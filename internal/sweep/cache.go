package sweep

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"
)

// Cache is a content-addressed on-disk result store. Entries are keyed
// by Job.Hash (which folds in the schema and module versions), so a
// changed config, seed, or simulator version misses cleanly instead of
// serving stale rows. Layout: <dir>/<hh>/<hash>.json where hh is the
// first hash byte, to keep directories small.
//
// Concurrent use — including by multiple processes sharing a directory —
// is safe: writes go through a unique temp file plus rename, and reads
// that race a write simply miss and re-simulate.
type Cache struct {
	dir string

	hits, misses, writes atomic.Int64
}

// entry is the cache file format: the job (for human inspection and
// integrity checking), the result payload, and the original simulation
// wall time.
type entry struct {
	Hash   string    `json:"hash"`
	Saved  time.Time `json:"saved"`
	WallNS int64     `json:"wall_ns"`
	Result Result    `json:"result"`
}

// DefaultDir returns the cache directory used when the caller does not
// pick one: $FLOV_SWEEP_CACHE if set, else <user-cache-dir>/flov-sweep.
func DefaultDir() (string, error) {
	if d := os.Getenv("FLOV_SWEEP_CACHE"); d != "" {
		return d, nil
	}
	base, err := os.UserCacheDir()
	if err != nil {
		return "", fmt.Errorf("sweep: no cache dir (set FLOV_SWEEP_CACHE): %w", err)
	}
	return filepath.Join(base, "flov-sweep"), nil
}

// NewCache opens (creating if needed) a cache rooted at dir.
func NewCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: create cache dir: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache root.
func (c *Cache) Dir() string { return c.dir }

// path returns the entry file for a hash.
func (c *Cache) path(hash string) string {
	return filepath.Join(c.dir, hash[:2], hash+".json")
}

// Get looks a job's cached result up. Corrupt, truncated or otherwise
// unusable entries count as misses (and are removed so the slot heals
// on the next Put): the caller recomputes and rewrites instead of ever
// seeing an error-carrying Result for a point that would simulate fine.
func (c *Cache) Get(j Job) (Result, bool) {
	hash := j.Hash()
	data, err := os.ReadFile(c.path(hash))
	if err != nil {
		c.misses.Add(1)
		return Result{}, false
	}
	r, ok := DecodeEntry(hash, data)
	if !ok {
		_ = os.Remove(c.path(hash)) // best effort: a stale entry just misses again
		c.misses.Add(1)
		return Result{}, false
	}
	c.hits.Add(1)
	return r, true
}

// DecodeEntry validates raw entry bytes against the hash they claim to
// answer and returns the result they carry. Three integrity layers: the
// JSON must parse (truncated writes do not), the recorded key must
// match the requested hash, and the embedded job must re-hash to that
// key (a parseable-but-mangled body misses instead of serving rows for
// a different point). An error-carrying entry is equally unusable —
// failures are never cached, so one can only be corruption or a foreign
// writer — and fails too. Shared by Get and by the cluster's cache
// federation, so remote entries get exactly the local hardening.
func DecodeEntry(hash string, data []byte) (Result, bool) {
	var e entry
	if err := json.Unmarshal(data, &e); err != nil ||
		e.Hash != hash || e.Result.Job.Hash() != hash || e.Result.Err != "" {
		return Result{}, false
	}
	r := e.Result
	r.Wall = time.Duration(e.WallNS)
	return r, true
}

// ReadEntry returns the raw stored bytes for a hash (the cluster's
// federation endpoint serves these; the fetching side re-validates with
// DecodeEntry, so a torn or mangled file transfers as a miss).
func (c *Cache) ReadEntry(hash string) ([]byte, bool) {
	data, err := os.ReadFile(c.path(hash))
	if err != nil {
		return nil, false
	}
	return data, true
}

// Put stores a finished result. Error-carrying results are the caller's
// to filter; the engine never caches them (failures may be transient).
func (c *Cache) Put(r Result) error {
	hash := r.Job.Hash()
	e := entry{Hash: hash, Saved: time.Now().UTC(), WallNS: int64(r.Wall), Result: r}
	data, err := json.MarshalIndent(e, "", " ")
	if err != nil {
		return fmt.Errorf("sweep: encode cache entry: %w", err)
	}
	dir := filepath.Dir(c.path(hash))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, hash+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()           // the write error is the one to report
		_ = os.Remove(tmp.Name()) // best effort: orphan temp only wastes space
		return err
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), c.path(hash)); err != nil {
		_ = os.Remove(tmp.Name())
		return err
	}
	c.writes.Add(1)
	return nil
}

// blobPath returns the sidecar blob file for a key (warm-start
// checkpoints). Blobs share the entry layout but use a .snap suffix so
// Len and row tooling never confuse them with result entries.
func (c *Cache) blobPath(key string) string {
	return filepath.Join(c.dir, key[:2], key+".snap")
}

// GetBlob reads an opaque blob stored under key. Integrity is the
// reader's concern (snapshot containers are CRC-checked on restore); a
// missing or unreadable blob is simply a miss.
func (c *Cache) GetBlob(key string) ([]byte, bool) {
	data, err := os.ReadFile(c.blobPath(key))
	if err != nil {
		return nil, false
	}
	return data, true
}

// PutBlob stores an opaque blob under key with the same temp-plus-rename
// discipline as Put, so concurrent writers and crashes never leave a
// torn blob behind.
func (c *Cache) PutBlob(key string, data []byte) error {
	dir := filepath.Dir(c.blobPath(key))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, key+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), c.blobPath(key)); err != nil {
		_ = os.Remove(tmp.Name())
		return err
	}
	return nil
}

// RemoveBlob deletes a blob that failed to restore, so the slot heals on
// the next warm run instead of failing forever.
func (c *Cache) RemoveBlob(key string) {
	_ = os.Remove(c.blobPath(key))
}

// Clear removes every cached entry (the whole directory tree) and
// recreates the root.
func (c *Cache) Clear() error {
	if err := os.RemoveAll(c.dir); err != nil {
		return err
	}
	return os.MkdirAll(c.dir, 0o755)
}

// Counters reports this cache handle's hit/miss/write counts.
func (c *Cache) Counters() (hits, misses, writes int64) {
	return c.hits.Load(), c.misses.Load(), c.writes.Load()
}

// Len walks the cache and counts stored entries (diagnostics; O(entries)).
func (c *Cache) Len() (int, error) {
	n := 0
	err := filepath.WalkDir(c.dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(path) == ".json" {
			n++
		}
		return nil
	})
	return n, err
}
