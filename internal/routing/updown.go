package routing

import (
	"fmt"

	"flov/internal/topology"
)

// Table is a per-node next-hop routing table over a subgraph of powered-on
// routers, as distributed by the Router Parking fabric manager.
type Table struct {
	m    topology.Mesh
	next [][]topology.Direction // next[node][dst]; Local when node==dst; -1 (NumPorts) when unreachable
}

// NoRouteDir marks an unreachable destination in a Table.
const NoRouteDir = topology.NumPorts

// NextHop returns the output direction from node toward dst.
func (t *Table) NextHop(node, dst int) topology.Direction { return t.next[node][dst] }

// HasRoute reports whether node can reach dst through the table.
func (t *Table) HasRoute(node, dst int) bool { return t.next[node][dst] != NoRouteDir }

// upDownState is a BFS state for up*/down* constrained shortest paths.
type upDownState struct {
	node int
	down bool // true once a "down" link has been taken
}

// BuildUpDownTable computes deadlock-free up*/down* next-hop tables over
// the active-router subgraph, rooted at root (the fabric manager's node in
// Router Parking). Links toward the BFS root are "up"; a legal path takes
// zero or more up links followed by zero or more down links, which admits
// no channel-dependency cycle. Among legal paths the table picks shortest
// ones (so detours only appear where parking forces them, matching the
// RP behaviour the paper describes).
func BuildUpDownTable(m topology.Mesh, active []bool, root int) (*Table, error) {
	return BuildUpDownTableLinks(m, active, root, nil)
}

// BuildUpDownTableLinks is BuildUpDownTable restricted to usable links:
// linkOK(u, d) reports whether the physical link from u in direction d may
// carry traffic (nil allows every link). The fault-aware Router Parking
// reconfiguration uses it to route around permanently failed links.
func BuildUpDownTableLinks(m topology.Mesh, active []bool, root int, linkOK func(u int, d topology.Direction) bool) (*Table, error) {
	n := m.N()
	if len(active) != n {
		return nil, fmt.Errorf("routing: active mask has %d entries for %d nodes", len(active), n) //flovlint:allow hotalloc -- table rebuild is event-driven (reconfiguration), not per cycle
	}
	if !active[root] {
		return nil, fmt.Errorf("routing: up*/down* root %d is not active", root) //flovlint:allow hotalloc -- table rebuild is event-driven (reconfiguration), not per cycle
	}
	usable := func(u int, d topology.Direction) bool { //flovlint:allow hotalloc -- table rebuild is event-driven (reconfiguration), not per cycle
		return linkOK == nil || linkOK(u, d)
	}

	// BFS levels from root over the active subgraph define up/down.
	level := make([]int, n) //flovlint:allow hotalloc -- table rebuild is event-driven (reconfiguration), not per cycle
	for i := range level {
		level[i] = -1
	}
	level[root] = 0
	queue := []int{root}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for d := topology.Direction(0); d < topology.NumLinkDirs; d++ {
			v := m.Neighbor(u, d)
			if v >= 0 && active[v] && usable(u, d) && level[v] < 0 {
				level[v] = level[u] + 1
				queue = append(queue, v) //flovlint:allow hotalloc -- table rebuild is event-driven (reconfiguration), not per cycle
			}
		}
	}

	// isUp reports whether the directed link u->v is an "up" link: toward
	// the root (strictly smaller level, ties broken by smaller node id).
	isUp := func(u, v int) bool { //flovlint:allow hotalloc -- table rebuild is event-driven (reconfiguration), not per cycle
		if level[v] != level[u] {
			return level[v] < level[u]
		}
		return v < u
	}

	t := &Table{m: m, next: make([][]topology.Direction, n)} //flovlint:allow hotalloc -- table rebuild is event-driven (reconfiguration), not per cycle
	for i := range t.next {
		t.next[i] = make([]topology.Direction, n) //flovlint:allow hotalloc -- table rebuild is event-driven (reconfiguration), not per cycle
		for j := range t.next[i] {
			t.next[i][j] = NoRouteDir
		}
	}

	// For each active source, BFS over (node, phase) states. The first-hop
	// direction is propagated along the search so each destination records
	// the first move of one shortest legal path.
	for src := 0; src < n; src++ {
		if !active[src] || level[src] < 0 {
			continue
		}
		t.next[src][src] = topology.Local
		type entry struct {
			st       upDownState
			firstHop topology.Direction
		}
		seen := make(map[upDownState]bool, 2*n) //flovlint:allow hotalloc -- table rebuild is event-driven (reconfiguration), not per cycle
		start := upDownState{node: src, down: false}
		seen[start] = true
		frontier := []entry{{st: start, firstHop: NoRouteDir}}
		for len(frontier) > 0 {
			var next []entry
			for _, e := range frontier {
				for d := topology.Direction(0); d < topology.NumLinkDirs; d++ {
					v := m.Neighbor(e.st.node, d)
					if v < 0 || !active[v] || level[v] < 0 || !usable(e.st.node, d) {
						continue
					}
					up := isUp(e.st.node, v)
					if e.st.down && up {
						continue // down -> up transition is illegal
					}
					st := upDownState{node: v, down: e.st.down || !up}
					if seen[st] {
						continue
					}
					seen[st] = true
					fh := e.firstHop
					if fh == NoRouteDir {
						fh = d
					}
					if t.next[src][v] == NoRouteDir {
						t.next[src][v] = fh
					}
					next = append(next, entry{st: st, firstHop: fh}) //flovlint:allow hotalloc -- table rebuild is event-driven (reconfiguration), not per cycle
				}
			}
			frontier = next
		}
	}
	return t, nil
}

// Connected reports whether all active nodes form one connected component
// under mesh adjacency restricted to active nodes. Vacuously true when
// fewer than two nodes are active.
func Connected(m topology.Mesh, active []bool) bool {
	return ConnectedLinks(m, active, nil)
}

// ConnectedLinks is Connected restricted to usable links: linkOK(u, d)
// reports whether the physical link from u in direction d may carry
// traffic (nil allows every link).
func ConnectedLinks(m topology.Mesh, active []bool, linkOK func(u int, d topology.Direction) bool) bool {
	n := m.N()
	start := -1
	total := 0
	for i := 0; i < n; i++ {
		if active[i] {
			total++
			if start < 0 {
				start = i
			}
		}
	}
	if total <= 1 {
		return true
	}
	seen := make([]bool, n) //flovlint:allow hotalloc -- table rebuild is event-driven (reconfiguration), not per cycle
	seen[start] = true
	count := 1
	queue := []int{start}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for d := topology.Direction(0); d < topology.NumLinkDirs; d++ {
			v := m.Neighbor(u, d)
			if v >= 0 && active[v] && !seen[v] && (linkOK == nil || linkOK(u, d)) {
				seen[v] = true
				count++
				queue = append(queue, v) //flovlint:allow hotalloc -- table rebuild is event-driven (reconfiguration), not per cycle
			}
		}
	}
	return count == total
}
