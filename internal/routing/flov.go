package routing

import (
	"flov/internal/topology"
)

// PowerView is the router's local knowledge of network power states: the
// contents of its Power State Registers. FLOV routing never needs global
// information — only the states of physical neighbors and (for gFLOV) the
// identity of the nearest powered-on router in each direction.
type PowerView interface {
	// NeighborOn reports whether the physical neighbor of node in
	// direction d is powered on (routable through its full pipeline).
	// It must return false if there is no neighbor in that direction.
	NeighborOn(node int, d topology.Direction) bool
	// LogicalNeighbor returns the nearest powered-on router strictly
	// beyond node in direction d (the logical neighbor for credit flow),
	// or -1 if none exists before the mesh edge.
	LogicalNeighbor(node int, d topology.Direction) int
}

// Decision is the outcome of a routing computation.
type Decision struct {
	// Dir is the chosen output port. Valid only when Hold is false.
	Dir topology.Direction
	// Hold means the packet cannot be forwarded yet: its destination
	// router is power-gated and sits on the forwarding path, so the
	// current router must hold the packet and trigger a wakeup.
	Hold bool
	// WakeTarget is the gated destination router to wake when Hold.
	WakeTarget int
	// NoRoute means no legal output exists this cycle (all candidates
	// are either gated dead-ends or the forbidden U-turn port); the
	// packet waits and may later time out into the escape subnetwork,
	// where a route always exists.
	NoRoute bool
	// Undeliverable means the packet can never reach its destination
	// (a permanent fault partitioned the network, or the packet has been
	// wedged past the fault drop timeout). The router drops the packet
	// explicitly — a classified loss, never a silent hang. Only the
	// fault-injection subsystem produces this.
	Undeliverable bool
}

// destGatedOnPath reports whether dst is a power-gated router lying on the
// straight FLOV path from cur in direction d (strictly between cur and
// cur's logical neighbor, or beyond the last powered-on router). When
// true, flits sent in direction d would fly over the destination, so the
// sender must instead hold the packet and wake dst.
func destGatedOnPath(m topology.Mesh, cur, dst int, d topology.Direction, pv PowerView) bool {
	cx, cy := m.XY(cur)
	dx, dy := m.XY(dst)
	// Only straight-line destinations can be flown over.
	if d.IsVertical() {
		if dx != cx {
			return false
		}
	} else if dy != cy {
		return false
	}
	ln := pv.LogicalNeighbor(cur, d)
	if ln == dst {
		return false // destination is powered on: normal delivery
	}
	if ln < 0 {
		// No powered-on router in that direction at all: dst (which is in
		// that direction) must be gated.
		return true
	}
	// dst gated iff it lies strictly between cur and the logical neighbor.
	lx, ly := m.XY(ln)
	switch d {
	case topology.North:
		return dy < ly
	case topology.South:
		return dy > ly
	case topology.East:
		return dx < lx
	case topology.West:
		return dx > lx
	default:
		return false // d is a cardinal direction here, never Local
	}
}

// FLOVRegular computes the §V partition-based dynamic route for a packet
// in a regular VC at powered-on router cur, heading to dst, having arrived
// through input port inDir (topology.Local for freshly injected packets).
//
// Rules, verbatim from the paper:
//   - axis partitions (1,3,5,7): send directly N/W/S/E — FLOV links ensure
//     connectivity over gated routers;
//   - quadrant partitions (0,2,4,6): prefer the Y-direction neighbor if
//     powered on (YX routing), else the X-direction neighbor if powered
//     on, else forward East toward the always-on column;
//   - never send a packet back out the port it arrived on (no U-turns);
//   - if the destination itself is gated and lies on the straight path,
//     hold the packet and wake the destination.
func FLOVRegular(m topology.Mesh, cur, dst int, inDir topology.Direction, pv PowerView) Decision {
	p := PartitionOf(m, cur, dst)
	if p == PartHere {
		return Decision{Dir: topology.Local}
	}
	forbidden := inDir // U-turn port; Local forbids nothing
	if p.IsAxis() {
		d := p.AxisDir()
		if destGatedOnPath(m, cur, dst, d, pv) {
			return Decision{Hold: true, WakeTarget: dst}
		}
		if d == forbidden {
			// Can only happen transiently after power-state changes
			// re-shape partitions mid-flight; wait for escape timeout.
			return Decision{NoRoute: true}
		}
		return Decision{Dir: d}
	}
	ydir, xdir := p.QuadrantDirs()
	if ydir != forbidden && pv.NeighborOn(cur, ydir) {
		return Decision{Dir: ydir}
	}
	if xdir != forbidden && pv.NeighborOn(cur, xdir) {
		return Decision{Dir: xdir}
	}
	// Both turn candidates unusable: head East toward the AON column so a
	// turn is guaranteed eventually. The AON column itself always has
	// powered-on Y neighbors, so East is never needed there.
	if topology.East == forbidden || !m.HasNeighbor(cur, topology.East) {
		return Decision{NoRoute: true}
	}
	return Decision{Dir: topology.East}
}

// FLOVEscape computes the deadlock-free escape-subnetwork route. Packets
// with axis destinations go straight; quadrant destinations go East until
// the always-on column, then North/South, then West along the destination
// row. The resulting turn set {E->N, E->S, N->W, S->W} contains no cycle
// (Fig. 4b), so the escape subnetwork is deadlock-free. Escape routing is
// deterministic and ignores the U-turn rule; it always returns a route.
func FLOVEscape(m topology.Mesh, cur, dst int, pv PowerView) Decision {
	p := PartitionOf(m, cur, dst)
	if p == PartHere {
		return Decision{Dir: topology.Local}
	}
	if p.IsAxis() {
		d := p.AxisDir()
		if destGatedOnPath(m, cur, dst, d, pv) {
			return Decision{Hold: true, WakeTarget: dst}
		}
		return Decision{Dir: d}
	}
	ydir, _ := p.QuadrantDirs()
	if m.InAONColumn(cur) {
		// Turn toward the destination row inside the always-on column.
		return Decision{Dir: ydir}
	}
	return Decision{Dir: topology.East}
}

// EscapeTurnAllowed reports whether the (in, out) turn is permitted in the
// escape subnetwork per Fig. 4(b). in is the direction the packet was
// traveling (not the input port), out the direction it would take next.
// Straight-through and ejection/injection are always allowed.
func EscapeTurnAllowed(in, out topology.Direction) bool {
	if in == topology.Local || out == topology.Local || in == out {
		return true
	}
	type turn struct{ in, out topology.Direction }
	allowed := map[turn]bool{
		{topology.East, topology.North}: true,
		{topology.East, topology.South}: true,
		{topology.North, topology.West}: true,
		{topology.South, topology.West}: true,
	}
	return allowed[turn{in, out}]
}
