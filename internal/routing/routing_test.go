package routing

import (
	"testing"
	"testing/quick"

	"flov/internal/topology"
)

func mesh8(t testing.TB) topology.Mesh {
	t.Helper()
	m, err := topology.NewMesh(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPartitionOfAxes(t *testing.T) {
	m := mesh8(t)
	cur := m.ID(4, 4)
	cases := []struct {
		x, y int
		want Partition
	}{
		{4, 6, PartN}, {4, 1, PartS}, {6, 4, PartE}, {1, 4, PartW},
		{6, 6, PartNE}, {1, 6, PartNW}, {1, 1, PartSW}, {6, 1, PartSE},
		{4, 4, PartHere},
	}
	for _, c := range cases {
		if got := PartitionOf(m, cur, m.ID(c.x, c.y)); got != c.want {
			t.Errorf("PartitionOf -> (%d,%d) = %v want %v", c.x, c.y, got, c.want)
		}
	}
}

func TestPartitionHelpers(t *testing.T) {
	if !PartN.IsAxis() || PartNE.IsAxis() {
		t.Fatal("IsAxis wrong")
	}
	if PartE.AxisDir() != topology.East {
		t.Fatal("AxisDir wrong")
	}
	y, x := PartNW.QuadrantDirs()
	if y != topology.North || x != topology.West {
		t.Fatal("QuadrantDirs wrong")
	}
}

// Property: YX routing reaches the destination in exactly Hops steps.
func TestYXReachesDestination(t *testing.T) {
	m := mesh8(t)
	err := quick.Check(func(a, b uint8) bool {
		src, dst := int(a)%m.N(), int(b)%m.N()
		cur, steps := src, 0
		for cur != dst {
			d := YX(m, cur, dst)
			cur = m.Neighbor(cur, d)
			if cur < 0 {
				return false
			}
			steps++
			if steps > m.N() {
				return false
			}
		}
		return steps == m.Hops(src, dst) && YX(m, dst, dst) == topology.Local
	}, &quick.Config{MaxCount: 1000})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: XY routing is minimal too.
func TestXYReachesDestination(t *testing.T) {
	m := mesh8(t)
	err := quick.Check(func(a, b uint8) bool {
		src, dst := int(a)%m.N(), int(b)%m.N()
		cur, steps := src, 0
		for cur != dst {
			cur = m.Neighbor(cur, XY(m, cur, dst))
			if cur < 0 {
				return false
			}
			steps++
			if steps > m.N() {
				return false
			}
		}
		return steps == m.Hops(src, dst)
	}, &quick.Config{MaxCount: 1000})
	if err != nil {
		t.Fatal(err)
	}
}

// maskView implements PowerView from a gated mask for routing tests.
type maskView struct {
	m     topology.Mesh
	gated map[int]bool
}

func (v maskView) NeighborOn(node int, d topology.Direction) bool {
	nb := v.m.Neighbor(node, d)
	return nb >= 0 && !v.gated[nb]
}

func (v maskView) LogicalNeighbor(node int, d topology.Direction) int {
	for nb := v.m.Neighbor(node, d); nb >= 0; nb = v.m.Neighbor(nb, d) {
		if !v.gated[nb] {
			return nb
		}
	}
	return -1
}

func TestFLOVRegularAxisFliesOverGated(t *testing.T) {
	m := mesh8(t)
	v := maskView{m: m, gated: map[int]bool{m.ID(5, 4): true}}
	// Destination due east beyond a gated router: go East anyway.
	dec := FLOVRegular(m, m.ID(4, 4), m.ID(6, 4), topology.Local, v)
	if dec.Hold || dec.NoRoute || dec.Dir != topology.East {
		t.Fatalf("axis-over-gated: %+v", dec)
	}
}

func TestFLOVRegularHoldsForGatedDestination(t *testing.T) {
	m := mesh8(t)
	dst := m.ID(5, 4)
	v := maskView{m: m, gated: map[int]bool{dst: true}}
	dec := FLOVRegular(m, m.ID(4, 4), dst, topology.Local, v)
	if !dec.Hold || dec.WakeTarget != dst {
		t.Fatalf("expected hold+wake for gated destination, got %+v", dec)
	}
}

func TestFLOVRegularQuadrantPrefersY(t *testing.T) {
	m := mesh8(t)
	v := maskView{m: m, gated: map[int]bool{}}
	dec := FLOVRegular(m, m.ID(4, 4), m.ID(6, 6), topology.Local, v)
	if dec.Dir != topology.North {
		t.Fatalf("quadrant should prefer Y (YX routing), got %v", dec.Dir)
	}
}

func TestFLOVRegularQuadrantFallsToX(t *testing.T) {
	m := mesh8(t)
	v := maskView{m: m, gated: map[int]bool{m.ID(4, 5): true}}
	dec := FLOVRegular(m, m.ID(4, 4), m.ID(6, 6), topology.Local, v)
	if dec.Dir != topology.East {
		t.Fatalf("quadrant with gated Y should use X, got %v", dec.Dir)
	}
}

func TestFLOVRegularQuadrantFallsEast(t *testing.T) {
	m := mesh8(t)
	// Destination north-west; both N and W neighbors gated: go East
	// toward the AON column.
	v := maskView{m: m, gated: map[int]bool{m.ID(4, 5): true, m.ID(3, 4): true}}
	dec := FLOVRegular(m, m.ID(4, 4), m.ID(1, 6), topology.Local, v)
	if dec.Dir != topology.East {
		t.Fatalf("double-gated quadrant should fall East, got %+v", dec)
	}
}

func TestFLOVRegularNoUTurn(t *testing.T) {
	m := mesh8(t)
	// Packet arrived from the East; NW destination; N gated, W gated:
	// East is forbidden (U-turn), so no route this cycle.
	v := maskView{m: m, gated: map[int]bool{m.ID(4, 5): true, m.ID(3, 4): true}}
	dec := FLOVRegular(m, m.ID(4, 4), m.ID(1, 6), topology.East, v)
	if !dec.NoRoute {
		t.Fatalf("expected NoRoute (U-turn forbidden), got %+v", dec)
	}
}

func TestFLOVRegularUTurnExcludesPreferredY(t *testing.T) {
	m := mesh8(t)
	v := maskView{m: m, gated: map[int]bool{}}
	// Arrived from the North; destination NE: Y preference (North) is a
	// U-turn, so the X direction must be chosen.
	dec := FLOVRegular(m, m.ID(4, 4), m.ID(6, 6), topology.North, v)
	if dec.Dir != topology.East {
		t.Fatalf("U-turn exclusion failed: %+v", dec)
	}
}

// Property: under any gated set (AON column always on, corners handled),
// FLOV escape routing always produces a legal move and reaches the
// destination (or holds for a gated destination) within a bounded number
// of steps, never taking a forbidden Fig. 4(b) turn.
func TestFLOVEscapeTerminatesAndLegalTurns(t *testing.T) {
	m := mesh8(t)
	err := quick.Check(func(a, b uint8, seedMask uint16) bool {
		src, dst := int(a)%m.N(), int(b)%m.N()
		gated := map[int]bool{}
		for id := 0; id < m.N(); id++ {
			if m.InAONColumn(id) || id == src {
				continue
			}
			if seedMask&(1<<(uint(id)%16)) != 0 && (id%3 == int(seedMask)%3) {
				gated[id] = true
			}
		}
		v := maskView{m: m, gated: gated}
		cur := src
		last := topology.Local
		for steps := 0; steps < 4*m.N(); steps++ {
			dec := FLOVEscape(m, cur, dst, v)
			if dec.Hold {
				return gated[dst] // holding is only legal for a gated destination
			}
			if dec.Dir == topology.Local {
				return cur == dst
			}
			if !EscapeTurnAllowed(last, dec.Dir) {
				return false
			}
			next := m.Neighbor(cur, dec.Dir)
			if next < 0 {
				return false
			}
			last = dec.Dir
			// Fly over gated intermediates without turning.
			for gated[next] && next != dst {
				nn := m.Neighbor(next, dec.Dir)
				if nn < 0 {
					return false
				}
				next = nn
			}
			cur = next
		}
		return false
	}, &quick.Config{MaxCount: 1500})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEscapeTurnRules(t *testing.T) {
	allowed := [][2]topology.Direction{
		{topology.East, topology.North}, {topology.East, topology.South},
		{topology.North, topology.West}, {topology.South, topology.West},
		{topology.East, topology.East}, {topology.Local, topology.North},
		{topology.West, topology.Local},
	}
	for _, a := range allowed {
		if !EscapeTurnAllowed(a[0], a[1]) {
			t.Errorf("turn %v->%v should be allowed", a[0], a[1])
		}
	}
	forbidden := [][2]topology.Direction{
		{topology.North, topology.East}, {topology.South, topology.East},
		{topology.West, topology.North}, {topology.West, topology.South},
	}
	for _, f := range forbidden {
		if EscapeTurnAllowed(f[0], f[1]) {
			t.Errorf("turn %v->%v should be forbidden", f[0], f[1])
		}
	}
}
