package routing

import (
	"testing"
	"testing/quick"

	"flov/internal/sim"
	"flov/internal/topology"
)

// randomConnectedActive draws a random active mask that keeps node 0 (the
// root) active and the whole active set connected.
func randomConnectedActive(m topology.Mesh, rng *sim.RNG, gateProb float64) []bool {
	active := make([]bool, m.N())
	for i := range active {
		active[i] = true
	}
	perm := rng.Perm(m.N())
	for _, id := range perm {
		if id == 0 || !rng.Bernoulli(gateProb) {
			continue
		}
		active[id] = false
		if !Connected(m, active) {
			active[id] = true
		}
	}
	return active
}

func TestUpDownTableFullMesh(t *testing.T) {
	m := mesh8(t)
	active := make([]bool, m.N())
	for i := range active {
		active[i] = true
	}
	tab, err := BuildUpDownTable(m, active, 0)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < m.N(); s++ {
		for d := 0; d < m.N(); d++ {
			if !tab.HasRoute(s, d) {
				t.Fatalf("no route %d -> %d on full mesh", s, d)
			}
		}
		if tab.NextHop(s, s) != topology.Local {
			t.Fatalf("self route for %d is %v", s, tab.NextHop(s, s))
		}
	}
}

// Property: on a random connected active subgraph, every active pair is
// routable, paths stay within active nodes, terminate, and respect the
// up*/down* rule (no up link after a down link).
func TestUpDownTableProperty(t *testing.T) {
	m := mesh8(t)
	rng := sim.NewRNG(99)
	for trial := 0; trial < 30; trial++ {
		active := randomConnectedActive(m, rng, 0.4)
		tab, err := BuildUpDownTable(m, active, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Recompute BFS levels exactly as the builder does.
		level := bfsLevels(m, active, 0)
		for s := 0; s < m.N(); s++ {
			if !active[s] {
				continue
			}
			for d := 0; d < m.N(); d++ {
				if !active[d] {
					continue
				}
				cur, down, steps := s, false, 0
				for cur != d {
					dir := tab.NextHop(cur, d)
					if dir == NoRouteDir {
						t.Fatalf("trial %d: no route %d -> %d", trial, s, d)
					}
					next := m.Neighbor(cur, dir)
					if next < 0 || !active[next] {
						t.Fatalf("trial %d: route %d->%d leaves active set at %d", trial, s, d, cur)
					}
					up := level[next] < level[cur] || (level[next] == level[cur] && next < cur)
					if down && up {
						t.Fatalf("trial %d: down->up violation %d->%d at %d", trial, s, d, cur)
					}
					down = down || !up
					cur = next
					if steps++; steps > 2*m.N() {
						t.Fatalf("trial %d: route %d->%d does not terminate", trial, s, d)
					}
				}
			}
		}
	}
}

func bfsLevels(m topology.Mesh, active []bool, root int) []int {
	level := make([]int, m.N())
	for i := range level {
		level[i] = -1
	}
	level[root] = 0
	q := []int{root}
	for len(q) > 0 {
		u := q[0]
		q = q[1:]
		for d := topology.Direction(0); d < topology.NumLinkDirs; d++ {
			v := m.Neighbor(u, d)
			if v >= 0 && active[v] && level[v] < 0 {
				level[v] = level[u] + 1
				q = append(q, v)
			}
		}
	}
	return level
}

func TestUpDownRejectsInactiveRoot(t *testing.T) {
	m := mesh8(t)
	active := make([]bool, m.N())
	for i := range active {
		active[i] = true
	}
	active[0] = false
	if _, err := BuildUpDownTable(m, active, 0); err == nil {
		t.Fatal("expected error for inactive root")
	}
}

func TestUpDownRejectsBadMask(t *testing.T) {
	m := mesh8(t)
	if _, err := BuildUpDownTable(m, make([]bool, 5), 0); err == nil {
		t.Fatal("expected error for short mask")
	}
}

func TestConnected(t *testing.T) {
	m := mesh8(t)
	active := make([]bool, m.N())
	for i := range active {
		active[i] = true
	}
	if !Connected(m, active) {
		t.Fatal("full mesh not connected")
	}
	// Cut column 4 entirely: two components.
	for y := 0; y < 8; y++ {
		active[m.ID(4, y)] = false
	}
	if Connected(m, active) {
		t.Fatal("split mesh reported connected")
	}
	// Single active node is vacuously connected.
	for i := range active {
		active[i] = false
	}
	active[3] = true
	if !Connected(m, active) {
		t.Fatal("singleton not connected")
	}
}

// Property: Connected agrees with a reachability count.
func TestConnectedMatchesReachability(t *testing.T) {
	m := mesh8(t)
	rng := sim.NewRNG(123)
	err := quick.Check(func(seed uint32) bool {
		r := rng.Fork(uint64(seed))
		active := make([]bool, m.N())
		anyOn := false
		for i := range active {
			active[i] = r.Bernoulli(0.7)
			anyOn = anyOn || active[i]
		}
		if !anyOn {
			return Connected(m, active)
		}
		// Reference: BFS from first active.
		start := -1
		total := 0
		for i, a := range active {
			if a {
				total++
				if start < 0 {
					start = i
				}
			}
		}
		lv := bfsLevels(m, active, start)
		count := 0
		for i, l := range lv {
			if l >= 0 && active[i] {
				count++
			}
		}
		return Connected(m, active) == (count == total)
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}
