// Package routing implements every routing algorithm in the FLOV paper:
// the YX dimension-order baseline, the 8-way destination partitioning of
// Fig. 4(a), the partition-based dynamic routing algorithm of §V (regular
// VCs), the deadlock-free escape-subnetwork routing with the Fig. 4(b)
// turn restrictions, and table-based routing for Router Parking.
package routing

import (
	"flov/internal/topology"
)

// Partition identifies which of the 8 regions of Fig. 4(a) a destination
// falls into, relative to the current router. Odd partitions are the four
// axes (same row/column); even partitions are the four quadrants.
type Partition int

// Partition values follow the paper's numbering: packets to partitions
// 1, 3, 5, 7 go directly North, West, South, East; quadrant partitions
// 0, 2, 4, 6 require a turn.
const (
	PartNE Partition = 0 // north-east quadrant
	PartN  Partition = 1 // same column, north
	PartNW Partition = 2 // north-west quadrant
	PartW  Partition = 3 // same row, west
	PartSW Partition = 4 // south-west quadrant
	PartS  Partition = 5 // same column, south
	PartSE Partition = 6 // south-east quadrant
	PartE  Partition = 7 // same row, east
	// PartHere means cur == dst.
	PartHere Partition = -1
)

// IsAxis reports whether the destination is in the same row or column.
func (p Partition) IsAxis() bool { return p == PartN || p == PartS || p == PartE || p == PartW }

// AxisDir returns the direct output direction for an axis partition.
// It panics for quadrant partitions.
func (p Partition) AxisDir() topology.Direction {
	switch p {
	case PartN:
		return topology.North
	case PartS:
		return topology.South
	case PartE:
		return topology.East
	case PartW:
		return topology.West
	default:
		panic("routing: AxisDir on quadrant partition")
	}
}

// QuadrantDirs returns the (Y, X) direction pair toward a quadrant
// destination. It panics for axis partitions.
func (p Partition) QuadrantDirs() (ydir, xdir topology.Direction) {
	switch p {
	case PartNE:
		return topology.North, topology.East
	case PartNW:
		return topology.North, topology.West
	case PartSW:
		return topology.South, topology.West
	case PartSE:
		return topology.South, topology.East
	default:
		panic("routing: QuadrantDirs on axis partition")
	}
}

// PartitionOf classifies dst relative to cur per Fig. 4(a).
func PartitionOf(m topology.Mesh, cur, dst int) Partition {
	cx, cy := m.XY(cur)
	dx, dy := m.XY(dst)
	switch {
	case dx == cx && dy == cy:
		return PartHere
	case dx == cx && dy > cy:
		return PartN
	case dx == cx && dy < cy:
		return PartS
	case dy == cy && dx > cx:
		return PartE
	case dy == cy && dx < cx:
		return PartW
	case dx > cx && dy > cy:
		return PartNE
	case dx < cx && dy > cy:
		return PartNW
	case dx < cx && dy < cy:
		return PartSW
	default:
		return PartSE
	}
}

// YX returns the next-hop direction under YX dimension-order routing
// (Y resolved first, then X) — the paper's baseline routing.
func YX(m topology.Mesh, cur, dst int) topology.Direction {
	cx, cy := m.XY(cur)
	dx, dy := m.XY(dst)
	switch {
	case dy > cy:
		return topology.North
	case dy < cy:
		return topology.South
	case dx > cx:
		return topology.East
	case dx < cx:
		return topology.West
	default:
		return topology.Local
	}
}

// XY returns the next-hop direction under XY dimension-order routing.
func XY(m topology.Mesh, cur, dst int) topology.Direction {
	cx, cy := m.XY(cur)
	dx, dy := m.XY(dst)
	switch {
	case dx > cx:
		return topology.East
	case dx < cx:
		return topology.West
	case dy > cy:
		return topology.North
	case dy < cy:
		return topology.South
	default:
		return topology.Local
	}
}
