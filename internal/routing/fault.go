package routing

import (
	"flov/internal/topology"
)

// FaultView is routing's window onto the fault-injection subsystem: which
// links are currently usable, what stays mutually reachable despite
// permanent damage, and when a wedged packet should give up. Implemented
// by package network over a fault.Injector; nil-free by construction (the
// filter is only installed when faults are attached).
type FaultView interface {
	// LinkUsable reports whether the link from node in direction d may be
	// chosen for new traffic this cycle: the link itself is healthy and
	// the neighbor it leads to has not failed permanently.
	LinkUsable(node int, d topology.Direction) bool
	// Reachable reports whether a packet at router a can ever reach
	// router b given the permanent faults injected so far.
	Reachable(a, b int) bool
	// StuckUndeliverable reports whether a head flit that has waited this
	// many cycles without a route should be classified undeliverable
	// (true only while permanent faults exist and the wait exceeds the
	// drop timeout).
	StuckUndeliverable(waited int64) bool
	// Faulted reports whether any fault has been injected so far; while
	// false the filter must be a strict no-op, keeping zero-fault runs
	// byte-identical to runs without the fault subsystem.
	Faulted() bool
}

// ApplyFaults post-filters a mechanism's routing decision under the
// current fault state. It either passes the decision through, substitutes
// a legal escape alternative around a failed link, downgrades the move to
// NoRoute (wait for a transient fault to heal or the escape timeout to
// engage), or classifies the packet as Undeliverable — never silently
// forwards into failed hardware.
func ApplyFaults(m topology.Mesh, cur, dst int, inDir topology.Direction, escape bool,
	dec Decision, waited int64, fv FaultView) Decision {
	if !fv.Faulted() {
		return dec
	}
	if !fv.Reachable(cur, dst) {
		return Decision{Undeliverable: true}
	}
	if dec.Hold {
		// The gated destination lies in our component (checked above), so
		// the wakeup will eventually land; transient faults on the way
		// heal. Keep holding.
		return dec
	}
	if !dec.NoRoute && dec.Dir != topology.Local && !fv.LinkUsable(cur, dec.Dir) {
		if escape {
			if alt, ok := EscapeAlternate(m, cur, inDir, fv); ok {
				return Decision{Dir: alt}
			}
		}
		dec = Decision{NoRoute: true}
	}
	if dec.NoRoute && fv.StuckUndeliverable(waited) {
		return Decision{Undeliverable: true}
	}
	return dec
}

// EscapeAlternate picks a deterministic legal escape move around failed
// links: the first direction (N, E, S, W order) with a usable link that
// respects the escape turn set of Fig. 4(b) relative to the packet's
// travel direction and is not the forbidden U-turn port. Staying inside
// the acyclic turn set preserves escape deadlock freedom; when no such
// move exists the packet waits (and is eventually classified if permanent
// faults have wedged it).
func EscapeAlternate(m topology.Mesh, cur int, inDir topology.Direction, fv FaultView) (topology.Direction, bool) {
	travel := topology.Local
	if inDir != topology.Local {
		travel = inDir.Opposite()
	}
	for d := topology.Direction(0); d < topology.NumLinkDirs; d++ {
		if d == inDir || !m.HasNeighbor(cur, d) || !fv.LinkUsable(cur, d) {
			continue
		}
		if !EscapeTurnAllowed(travel, d) {
			continue
		}
		return d, true
	}
	return 0, false
}
