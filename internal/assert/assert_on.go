//go:build flovdebug

package assert

// On enables runtime invariant checks (flovdebug build).
const On = true
