//go:build !flovdebug

package assert

// On disables runtime invariant checks (ordinary build); guarded
// blocks compile away entirely.
const On = false
