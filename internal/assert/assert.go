// Package assert provides build-tag-gated runtime invariant checks for
// the simulator's hot paths. The constant On is true only when the
// build carries the `flovdebug` tag, so guarded blocks
//
//	if assert.On {
//		// expensive invariant walk
//	}
//
// are dead-code eliminated from ordinary builds and cost nothing there.
// CI exercises the checks with `go test -race -tags flovdebug ./...`.
package assert

import "fmt"

// Failf reports a violated invariant. Invariants guard simulator
// correctness (credit conservation, flit conservation, power-gating
// isolation); a violation is a bug in the simulator itself, so it
// panics rather than returning an error.
func Failf(format string, args ...any) {
	panic("invariant violated: " + fmt.Sprintf(format, args...))
}
