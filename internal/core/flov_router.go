package core

import (
	"fmt"

	"flov/internal/assert"
	"flov/internal/config"
	"flov/internal/noc"
	"flov/internal/power"
	"flov/internal/router"
	"flov/internal/routing"
	"flov/internal/topology"
)

// flovRouter wraps one baseline router with the FLOV architecture:
// power-state FSM, PSRs, HSC message handling, FLOV latches and credit
// relaying. All inter-router knowledge flows through control messages.
type flovRouter struct {
	id   int            //flovsnap:skip identity fixed at construction
	mech *Mechanism     //flovsnap:skip wiring installed by Attach
	r    *router.Router //flovsnap:skip wiring installed by Attach
	mesh topology.Mesh  //flovsnap:skip immutable topology
	cfg  config.Config  //flovsnap:skip immutable run configuration

	state     PowerState
	coreGated bool
	neverGate bool // always-on column routers never power down //flovsnap:skip derived from mesh position at construction

	// PSR set 1: immediate (physical) neighbors.
	physID    [topology.NumLinkDirs]int //flovsnap:skip immutable physical neighbor ids
	physState [topology.NumLinkDirs]PowerState
	// PSR set 2: logical neighbors (nearest powered-on router per
	// direction; equals the physical neighbor while it is powered).
	logID    [topology.NumLinkDirs]int
	logState [topology.NumLinkDirs]PowerState

	// FLOV latch datapath: one output latch per direction; only the
	// dimensions with neighbors on both sides carry fly-over links.
	flovX, flovY bool //flovsnap:skip derived from mesh position at construction
	latch        [topology.NumLinkDirs]*noc.Flit

	// Handshake bookkeeping.
	doneNeeded [topology.NumLinkDirs]bool  // awaiting drain_done per direction
	oweDone    [topology.NumLinkDirs][]int // requester ids owed a drain_done once uncommitted
	awaitSync  [topology.NumLinkDirs]bool  // post-wakeup: discard credits until MsgCreditSync

	wantWake   bool
	poweredAt  int64 // cycle the wakeup latency elapses
	transStart int64 // cycle the current Draining/Wakeup began (timeout base)
	retryAt    int64 // no new transition attempts before this cycle
	lastLocal  int64 // last cycle with local (core) traffic activity
	wakeSent   map[int]int64

	localBusy func() bool //flovsnap:skip wiring installed by Attach
	now       int64       //flovsnap:skip re-seeded from the cycle argument at the top of every Tick

	// Counters for tests and reports.
	sleeps, wakes, drainAborts, wakeAborts int64
	latchTraversals                        int64

	// sleepTraversals snapshots the wrapped router's crossbar counter at
	// commitSleep; flovdebug builds assert it never moves while gated
	// (flits may only cross a gated router through the FLOV latches).
	sleepTraversals int64
}

// newFLOVRouter wraps r.
func newFLOVRouter(id int, mech *Mechanism, r *router.Router, mesh topology.Mesh, cfg config.Config) *flovRouter {
	w := &flovRouter{
		id:       id,
		mech:     mech,
		r:        r,
		mesh:     mesh,
		cfg:      cfg,
		wakeSent: make(map[int]int64),
	}
	w.neverGate = mesh.InAONColumn(id)
	w.flovX, w.flovY = mesh.FLOVDims(id)
	for d := 0; d < topology.NumLinkDirs; d++ {
		w.physID[d] = mesh.Neighbor(id, topology.Direction(d))
		w.physState[d] = Active
		w.logID[d] = w.physID[d]
		w.logState[d] = Active
	}

	r.RouteFn = func(inDir topology.Direction, escape bool, pkt *noc.Packet) routing.Decision {
		if escape {
			return routing.FLOVEscape(mesh, id, pkt.Dst, w)
		}
		return routing.FLOVRegular(mesh, id, pkt.Dst, inDir, w)
	}
	r.AllocOK = w.allocOK
	r.WakeReq = w.requestWake
	r.OnCtrl = w.onCtrl
	r.DropCredit = func(d topology.Direction) bool {
		return d != topology.Local && w.awaitSync[d]
	}
	return w
}

// --- routing.PowerView -----------------------------------------------

// NeighborOn implements routing.PowerView from the local PSRs.
func (w *flovRouter) NeighborOn(node int, d topology.Direction) bool {
	return w.physID[d] >= 0 && w.physState[d] == Active
}

// LogicalNeighbor implements routing.PowerView: the nearest powered-on
// router in direction d according to PSR set 2.
func (w *flovRouter) LogicalNeighbor(node int, d topology.Direction) int {
	return w.logID[d]
}

// allocOK gates new packet allocations per the handshake protocol: new
// transmissions may start toward Active neighbors and over stably
// sleeping routers whose logical neighbor is Active; never toward or
// across routers in Draining or Wakeup.
func (w *flovRouter) allocOK(d topology.Direction) bool {
	if d == topology.Local {
		return true
	}
	switch w.physState[d] {
	case Active:
		return true
	case Sleep:
		return w.logID[d] >= 0 && w.logState[d] == Active
	default:
		return false
	}
}

// requestWake sends (rate-limited) a MsgWakeTarget toward the gated
// destination router holding up a packet.
func (w *flovRouter) requestWake(target int) {
	if last, ok := w.wakeSent[target]; ok && w.now-last < 16 {
		return
	}
	w.wakeSent[target] = w.now
	d := w.mesh.DirectionTo(w.id, target, true)
	if d == topology.Local {
		return
	}
	// The gated destination lies on a straight line from here.
	tx, ty := w.mesh.XY(target)
	cx, cy := w.mesh.XY(w.id)
	switch {
	case tx == cx && ty > cy:
		d = topology.North
	case tx == cx && ty < cy:
		d = topology.South
	case ty == cy && tx > cx:
		d = topology.East
	case ty == cy && tx < cx:
		d = topology.West
	default:
		return // not straight-line adjacent: another router will assert it
	}
	w.send(d, Msg{Type: MsgWakeTarget, From: w.id, To: -1, Target: target})
}

// send pushes a handshake message out port d.
func (w *flovRouter) send(d topology.Direction, m Msg) {
	if w.r.Ports[d].OutCtrl == nil {
		return
	}
	w.r.Ports[d].OutCtrl.Push(w.now, router.CtrlSignal(m)) //flovlint:allow hotalloc -- control messages flow only during power transitions
	w.mech.ledger.AddDyn(power.CatHandshake, 1)
}

// relay forwards a control signal straight through a power-gated router.
// Relayed signals are registered for one extra cycle (2 cycles per
// sleeping hop), matching the FLOV data path: a drain_done or credit can
// therefore never overtake the data flits travelling the same line, which
// is what makes the multi-hop gFLOV drain handshake safe. The slower
// credit round trip over fly-over paths is the contention source the
// paper itself points out in §VI-B.
func (w *flovRouter) relay(from topology.Direction, s router.Signal) {
	opp := from.Opposite()
	if q := w.r.Ports[opp].OutCtrl; q != nil {
		q.PushAfter(w.now, 1, s)
		if s.IsCredit {
			w.mech.ledger.AddDyn(power.CatCredit, 1)
		}
	}
}

// relayOrBounce forwards a handshake request along the line; when the
// line ends here (mesh edge), nothing beyond can hold committed traffic,
// so the request is answered immediately with a drain_done on behalf of
// the dead end. Without this, a request whose entire line is power-gated
// would die at the edge and wedge the requester in Draining/Wakeup.
func (w *flovRouter) relayOrBounce(from topology.Direction, m Msg) {
	if w.r.Ports[from.Opposite()].OutCtrl != nil {
		w.relay(from, router.CtrlSignal(m)) //flovlint:allow hotalloc -- control messages flow only during power transitions
		return
	}
	w.send(from, Msg{Type: MsgDrainDone, From: w.id, To: m.From})
}

// --- per-cycle behaviour ----------------------------------------------

// transition switches the power state, notifying the mechanism's
// optional observer (event tracing and tests).
func (w *flovRouter) transition(to PowerState) {
	from := w.state
	w.state = to
	if w.mech.OnTransition != nil {
		w.mech.OnTransition(w.now, w.id, from, to)
	}
}

// Tick advances the FLOV router one cycle according to its power state.
// A router frozen by the fault subsystem does nothing at all: pipeline,
// FSM, latches and handshakes all halt until the fault heals (neighbors
// recover via their own transition timeouts and the escape heuristics).
func (w *flovRouter) Tick(now int64) {
	w.now = now
	if w.r.Frozen {
		return
	}
	switch w.state {
	case Active:
		w.r.Tick(now)
		w.sendOwedDones(now)
		w.tickActive(now)
	case Draining:
		w.r.Tick(now)
		w.sendOwedDones(now)
		w.tickDraining(now)
	case Sleep:
		w.tickSleep(now)
	case Wakeup:
		w.tickWakeup(now)
	}
}

// sendOwedDones emits drain_done replies toward every handshake partner
// waiting on a direction, once no packet remains committed that way. Each
// reply is addressed to its requester so it cannot be mis-consumed by
// another router handshaking on the same line.
func (w *flovRouter) sendOwedDones(now int64) {
	for d := 0; d < topology.NumLinkDirs; d++ {
		if len(w.oweDone[d]) == 0 || w.r.CommittedTo(topology.Direction(d)) {
			continue
		}
		for _, to := range w.oweDone[d] {
			w.send(topology.Direction(d), Msg{Type: MsgDrainDone, From: w.id, To: to})
		}
		w.oweDone[d] = w.oweDone[d][:0]
	}
}

// addOwe records that router `to` awaits our drain_done in direction d.
func (w *flovRouter) addOwe(d topology.Direction, to int) {
	for _, id := range w.oweDone[d] {
		if id == to {
			return
		}
	}
	w.oweDone[d] = append(w.oweDone[d], to)
}

// removeOwe cancels a pending drain_done toward router `to`.
func (w *flovRouter) removeOwe(d topology.Direction, to int) {
	lst := w.oweDone[d][:0]
	for _, id := range w.oweDone[d] {
		if id != to {
			lst = append(lst, id)
		}
	}
	w.oweDone[d] = lst
}

func (w *flovRouter) tickActive(now int64) {
	if w.state != Active {
		return
	}
	w.wantWake = false
	if w.r.LocalActivity() || w.localBusy() {
		w.lastLocal = now
	}
	if w.drainEligible(now) {
		w.startDrain(now)
	}
}

// drainEligible applies the protocol preconditions for entering Draining.
func (w *flovRouter) drainEligible(now int64) bool {
	if w.neverGate || !w.coreGated || w.localBusy() || now < w.retryAt {
		return false
	}
	for d := 0; d < topology.NumLinkDirs; d++ {
		if w.awaitSync[d] {
			// Still rebuilding credit state after the last wakeup: the
			// sleep snapshot would hand stale counters upstream.
			return false
		}
	}
	if now-w.lastLocal < int64(w.cfg.IdleThreshold) {
		return false
	}
	for d := 0; d < topology.NumLinkDirs; d++ {
		if w.physID[d] < 0 {
			continue
		}
		if w.mech.generalized {
			// gFLOV: no logical partner may be mid-transition, and no
			// Draining-Draining / Draining-Wakeup logical pairs.
			if w.physState[d] == Draining || w.physState[d] == Wakeup {
				return false
			}
			if w.logID[d] >= 0 && w.logState[d] != Active {
				return false
			}
		} else {
			// rFLOV: no two consecutive routers may be powered down, so
			// every physical neighbor must be fully Active.
			if w.physState[d] != Active {
				return false
			}
		}
	}
	return true
}

// startDrain enters Draining and handshakes with the logical partners.
func (w *flovRouter) startDrain(now int64) {
	w.transition(Draining)
	w.transStart = now
	for d := 0; d < topology.NumLinkDirs; d++ {
		w.doneNeeded[d] = false
		if w.physID[d] < 0 || w.logID[d] < 0 {
			continue
		}
		w.doneNeeded[d] = true
		w.send(topology.Direction(d), Msg{Type: MsgDrainReq, From: w.id, To: -1})
	}
}

// abortDrain returns a Draining router to Active and informs partners.
// A small id-jittered backoff spaces out the next attempt so competing
// transitions desynchronize.
func (w *flovRouter) abortDrain() {
	w.transition(Active)
	w.drainAborts++
	w.retryAt = w.now + w.backoff()
	// Announce to EVERY handshake partner, not only those still owing a
	// drain_done: a partner that already replied recorded us as Draining
	// and would otherwise freeze its line toward us forever.
	for d := 0; d < topology.NumLinkDirs; d++ {
		if w.physID[d] >= 0 && w.logID[d] >= 0 {
			w.send(topology.Direction(d), Msg{Type: MsgDrainAbort, From: w.id, To: -1})
		}
		w.doneNeeded[d] = false
	}
}

// backoff returns the per-router retry delay.
func (w *flovRouter) backoff() int64 {
	return int64(w.cfg.RetryBackoff) + int64((w.id*13)%(w.cfg.RetryBackoff+1))
}

// abortWakeup gives up a wakeup attempt that cannot quiesce (transition
// timeout): the router returns to Sleep (its latches never stopped
// forwarding, so this is always safe), announces the abort so partners
// unfreeze their lines, and retries after a backoff. This breaks the
// circular wait that arises when many routers wake simultaneously under
// OS churn and their frozen lines block each other's drain handshakes.
func (w *flovRouter) abortWakeup(now int64) {
	w.transition(Sleep)
	w.wakeAborts++
	w.retryAt = now + w.backoff()
	for d := 0; d < topology.NumLinkDirs; d++ {
		w.doneNeeded[d] = false
		if w.physID[d] >= 0 && w.logID[d] >= 0 {
			w.send(topology.Direction(d), Msg{Type: MsgWakeupAbort, From: w.id, To: -1})
		}
	}
}

func (w *flovRouter) tickDraining(now int64) {
	if w.state != Draining {
		// A control message processed this cycle aborted the drain.
		return
	}
	if !w.coreGated || w.wantWake {
		w.abortDrain()
		return
	}
	if now-w.transStart > int64(w.cfg.TransitionTimeout) {
		// Cannot quiesce (congestion or handshake churn): release the
		// freeze and retry later.
		w.abortDrain()
		return
	}
	for d := 0; d < topology.NumLinkDirs; d++ {
		if w.doneNeeded[d] {
			return
		}
	}
	if !w.r.BuffersEmpty() || w.r.ArrivalsPending() || w.localBusy() {
		return
	}
	w.commitSleep(now)
}

// commitSleep power-gates the router: activate the FLOV muxes/latches,
// announce Sleep with credit copy-up payloads, and charge the gating
// energy overhead.
func (w *flovRouter) commitSleep(now int64) {
	w.transition(Sleep)
	w.sleeps++
	w.sleepTraversals = w.r.Traversals
	w.mech.ledger.AddDyn(power.CatGating, 1)
	for d := 0; d < topology.NumLinkDirs; d++ {
		if w.physID[d] < 0 {
			continue
		}
		far := topology.Direction(d).Opposite()
		m := Msg{Type: MsgSleep, From: w.id, To: -1, Target: -1, LogID: -1, LogState: Active}
		if w.physID[far] >= 0 {
			m.LogID = w.logID[far]
			m.LogState = w.logState[far]
			m.Counts = append([]int(nil), w.r.Out(far).Credits...) //flovlint:allow hotalloc -- credit-sync snapshot taken once per sleep commit
		}
		w.send(topology.Direction(d), m)
	}
}

func (w *flovRouter) tickSleep(now int64) {
	if assert.On {
		w.assertGatedQuiescent(now)
	}
	w.forwardLatches(now)
	w.relayAndObserve(now)

	// Wakeup triggers: core re-activated by the OS, or a neighbor holds a
	// packet destined to this core. Deferred while any logical partner is
	// draining (gFLOV rule: the draining router changes state first) and
	// during the post-abort backoff window.
	if now < w.retryAt {
		return
	}
	if !w.coreGated || w.wantWake {
		for d := 0; d < topology.NumLinkDirs; d++ {
			if w.logID[d] >= 0 && w.logState[d] == Draining {
				return
			}
		}
		w.startWakeup(now)
	}
}

// startWakeup begins powering the router back on.
func (w *flovRouter) startWakeup(now int64) {
	w.transition(Wakeup)
	w.transStart = now
	w.poweredAt = now + int64(w.cfg.WakeupLatency)
	for d := 0; d < topology.NumLinkDirs; d++ {
		w.doneNeeded[d] = false
		if w.physID[d] < 0 || w.logID[d] < 0 {
			continue
		}
		w.doneNeeded[d] = true
		w.send(topology.Direction(d), Msg{Type: MsgWakeupReq, From: w.id, To: -1})
	}
}

func (w *flovRouter) tickWakeup(now int64) {
	if assert.On {
		w.assertGatedQuiescent(now)
	}
	w.forwardLatches(now)
	for d := 0; d < topology.NumLinkDirs; d++ {
		q := w.r.Ports[d].InCtrl
		if q == nil {
			continue
		}
		dir := topology.Direction(d)
		q.Drain(now, func(s router.Signal) {
			if s.IsCredit {
				w.relay(dir, s) // still relaying downstream credits upstream
				return
			}
			w.handleWakeupMsg(dir, s.Msg.(Msg))
		})
	}

	ready := now >= w.poweredAt && w.latchesEmpty() && !w.flovArrivalsPending()
	for d := 0; d < topology.NumLinkDirs; d++ {
		if w.doneNeeded[d] {
			ready = false
		}
	}
	if ready {
		w.commitActive(now)
		return
	}
	if now-w.transStart > int64(w.cfg.TransitionTimeout) {
		w.abortWakeup(now)
	}
}

// handleWakeupMsg processes handshake traffic while in Wakeup.
func (w *flovRouter) handleWakeupMsg(d topology.Direction, m Msg) {
	switch m.Type {
	case MsgDrainDone:
		// Ours clears the direction; anyone else's is relayed onward —
		// this is how the drain_done reaches the other Wakeup routers
		// on the line (paper §IV-B), always behind the data flits.
		if m.To == w.id {
			w.doneNeeded[d] = false
		} else {
			w.relay(d, router.CtrlSignal(m)) //flovlint:allow hotalloc -- control messages flow only during power transitions
		}
	case MsgDrainReject, MsgCreditSync:
		// Point-to-point replies for someone else pass through.
		if m.To != w.id {
			w.relay(d, router.CtrlSignal(m)) //flovlint:allow hotalloc -- control messages flow only during power transitions
		}
	case MsgDrainReq:
		// Draining loses to Wakeup: force the requester to abort.
		w.send(d, Msg{Type: MsgDrainReject, From: w.id, To: m.From})
	case MsgWakeupReq:
		// Another router on this line is waking too. Simultaneous
		// wakeups have no mutual dependence, so we owe it nothing — but
		// the first Active router beyond us does: relay the request to
		// it (or answer for the dead end at the mesh edge). Its
		// drain_done replies, relayed back through every waking router
		// behind the data flits, unblock the whole line.
		w.observe(d, m)
		w.relayOrBounce(d, m)
	case MsgSleep:
		w.observe(d, m)
		w.relay(d, router.CtrlSignal(m)) //flovlint:allow hotalloc -- control messages flow only during power transitions
	case MsgAwake:
		w.observe(d, m)
	case MsgWakeTarget:
		if m.Target != w.id {
			w.relay(d, router.CtrlSignal(m)) //flovlint:allow hotalloc -- control messages flow only during power transitions
		}
	default:
		w.observe(d, m)
	}
}

// commitActive finishes the wakeup: switch the muxes back, zero the
// output credits (they are rebuilt from MsgCreditSync replies), and
// announce Active.
func (w *flovRouter) commitActive(now int64) {
	w.transition(Active)
	w.wakes++
	w.mech.ledger.AddDyn(power.CatGating, 1)
	w.wantWake = false
	w.lastLocal = now
	for d := 0; d < topology.NumLinkDirs; d++ {
		if w.physID[d] < 0 {
			continue
		}
		w.r.Out(topology.Direction(d)).SetZero()
		// Credits arriving before the sync reply are already included in
		// its snapshot; discard them until it lands.
		w.awaitSync[d] = w.logID[d] >= 0
		w.send(topology.Direction(d), Msg{Type: MsgAwake, From: w.id, To: -1})
	}
}

// assertGatedQuiescent checks (flovdebug builds) that a power-gated
// router's pipeline is truly dark: no flit has crossed its crossbar
// since commitSleep and its input buffers stay empty — traffic may only
// pass through the FLOV latch bypass.
func (w *flovRouter) assertGatedQuiescent(now int64) {
	if w.r.Traversals != w.sleepTraversals {
		assert.Failf("flov %d: %d flit(s) traversed the gated pipeline in state %v at cycle %d",
			w.id, w.r.Traversals-w.sleepTraversals, w.state, now)
	}
	if !w.r.BuffersEmpty() {
		assert.Failf("flov %d: input buffers non-empty while gated in state %v at cycle %d",
			w.id, w.state, now)
	}
}

// latchesEmpty reports whether all FLOV output latches are clear.
func (w *flovRouter) latchesEmpty() bool {
	for _, f := range w.latch {
		if f != nil {
			return false
		}
	}
	return true
}

// flovArrivalsPending reports whether flits are still in flight on the
// fly-over input links.
func (w *flovRouter) flovArrivalsPending() bool {
	for d := 0; d < topology.NumLinkDirs; d++ {
		if q := w.r.Ports[d].InFlit; q != nil && q.Len() > 0 {
			return true
		}
	}
	return false
}

// forwardLatches runs the FLOV bypass datapath: each active dimension
// forwards its latch onto the output link and refills it from the
// opposite input, one flit per cycle per direction (1-cycle latch +
// 1-cycle link = the paper's fast FLOV hop).
func (w *flovRouter) forwardLatches(now int64) {
	for d := 0; d < topology.NumLinkDirs; d++ {
		out := topology.Direction(d)
		if out.IsVertical() && !w.flovY || !out.IsVertical() && !w.flovX {
			continue
		}
		if f := w.latch[d]; f != nil {
			w.latch[d] = nil
			w.r.Ports[out].OutFlit.Push(now, f)
			w.mech.ledger.AddDyn(power.CatLink, 1)
			if f.Type.IsHead() {
				f.Pkt.LinkHops++
			}
		}
		in := out.Opposite()
		if w.latch[d] == nil {
			if f, ok := w.r.Ports[in].InFlit.Pop(now); ok {
				if f.Pkt.Dst == w.id {
					panic(fmt.Sprintf("flov %d: flit %s for own core arrived while power-gated", w.id, f))
				}
				w.latch[d] = f
				w.latchTraversals++
				w.mech.ledger.AddDyn(power.CatFLOVLatch, 1)
				if f.Type.IsHead() {
					f.Pkt.FLOVHops++
				}
			}
		}
	}
	// Dead dimensions and the local port must stay silent while gated.
	for d := 0; d < topology.NumLinkDirs; d++ {
		out := topology.Direction(d)
		dead := out.IsVertical() && !w.flovY || !out.IsVertical() && !w.flovX
		if dead {
			if q := w.r.Ports[out].InFlit; q != nil {
				if f, ok := q.Pop(now); ok {
					panic(fmt.Sprintf("flov %d: flit %s arrived on dead dimension %s while gated", w.id, f, out))
				}
			}
		}
	}
	if q := w.r.Ports[topology.Local].InFlit; q != nil {
		if f, ok := q.Pop(now); ok {
			panic(fmt.Sprintf("flov %d: local flit %s injected while gated", w.id, f))
		}
	}
}

// relayAndObserve handles the control plane of a sleeping router: relay
// credits and handshake signals straight through, consume wake requests
// addressed here, and keep the PSRs current from passing messages.
func (w *flovRouter) relayAndObserve(now int64) {
	for d := 0; d < topology.NumLinkDirs; d++ {
		q := w.r.Ports[d].InCtrl
		if q == nil {
			continue
		}
		dir := topology.Direction(d)
		q.Drain(now, func(s router.Signal) {
			if s.IsCredit {
				w.relay(dir, s)
				return
			}
			m := s.Msg.(Msg)
			if m.Type == MsgWakeTarget && m.Target == w.id {
				w.wantWake = true
				return
			}
			// Addressed replies: a late reply to this (now sleeping)
			// router is stale and must be dropped, not passed to a
			// router that would misread it; everything else relays.
			if m.To >= 0 && m.To == w.id {
				return
			}
			w.observe(dir, m)
			if m.Type == MsgDrainReq || m.Type == MsgWakeupReq {
				w.relayOrBounce(dir, m)
			} else {
				w.relay(dir, s)
			}
		})
	}
}

// observe updates PSRs from a message seen on port d (either consumed or
// relayed): power-gated routers keep both PSR sets current this way.
func (w *flovRouter) observe(d topology.Direction, m Msg) {
	if m.From == w.physID[d] {
		switch m.Type {
		case MsgDrainReq:
			w.physState[d] = Draining
		case MsgDrainAbort, MsgAwake:
			w.physState[d] = Active
		case MsgSleep, MsgWakeupAbort:
			w.physState[d] = Sleep
		case MsgWakeupReq:
			w.physState[d] = Wakeup
		default:
			// Credit sync, drain votes and wake-target unicasts carry no
			// physical power-state information.
		}
	}
	switch m.Type {
	case MsgDrainReq:
		if m.From == w.logID[d] {
			w.logState[d] = Draining
		}
	case MsgDrainAbort:
		if m.From == w.logID[d] {
			w.logState[d] = Active
		}
	case MsgSleep:
		if m.From == w.logID[d] {
			w.logID[d] = m.LogID
			w.logState[d] = m.LogState
			if m.LogID < 0 {
				w.logState[d] = Active
			}
		}
	case MsgWakeupAbort:
		// The waker went back to Sleep; the logical neighborhood is as
		// it was before its request.
		w.logState[d] = Active
	case MsgAwake:
		w.logID[d] = m.From
		w.logState[d] = Active
	case MsgWakeupReq:
		// Unconditional: a sleeping router between us and the logical
		// neighbor is powering up, so no new packets may be committed
		// across this line until its MsgAwake (it could not absorb a
		// starved line: its latches must drain before it can finish).
		w.logState[d] = Wakeup
	default:
		// Credit sync, drain votes and wake-target unicasts carry no
		// logical power-state information.
	}
}
