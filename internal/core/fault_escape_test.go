package core

import (
	"testing"

	"flov/internal/config"
	"flov/internal/fault"
	"flov/internal/gating"
	"flov/internal/network"
	"flov/internal/sim"
	"flov/internal/topology"
	"flov/internal/traffic"
)

// buildFaultedFLOV assembles a FLOV network with the given gated
// fraction and fault scenario attached.
func buildFaultedFLOV(t *testing.T, generalized bool, frac float64, cfg config.Config, fs fault.Spec) *network.Network {
	t.Helper()
	mesh, err := topology.NewMesh(cfg.Width, cfg.Height)
	if err != nil {
		t.Fatal(err)
	}
	mask := gating.FractionGated(mesh, frac, nil, sim.NewRNG(7))
	gen := traffic.NewGenerator(traffic.Uniform, mesh, nil)
	var mech *Mechanism
	if generalized {
		mech = NewGFLOV()
	} else {
		mech = NewRFLOV()
	}
	n, err := network.New(cfg, mech, gating.Static(mask), gen, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.AttachFaults(fs); err != nil {
		t.Fatal(err)
	}
	return n
}

func escapeTestConfig() config.Config {
	cfg := config.Default()
	cfg.Width, cfg.Height = 4, 4
	cfg.TotalCycles = 6000
	cfg.WarmupCycles = 600
	return cfg
}

// checkAccounting asserts the fault-run liveness contract: every
// measured packet is delivered, classified lost, or a countable
// straggler — never silently vanished, never an unbounded wait (the run
// loop itself is bounded by TotalCycles + DrainCycles).
func checkAccounting(t *testing.T, res network.Results) int64 {
	t.Helper()
	stragglers := res.OfferedPkts - res.Packets - res.LostPkts
	if stragglers < 0 {
		t.Fatalf("accounting over-counts: offered=%d delivered=%d lost=%d",
			res.OfferedPkts, res.Packets, res.LostPkts)
	}
	if res.Packets == 0 {
		t.Fatalf("nothing delivered: %+v", res)
	}
	return stragglers
}

// TestGFLOVGatedWithTransientLinkFaults: gated routers (FLOV bypass
// latches in use) plus transient link faults. Everything must still
// deliver once the links heal — no drops, no stuck flits.
func TestGFLOVGatedWithTransientLinkFaults(t *testing.T) {
	for _, frac := range []float64{0.3, 0.6} {
		cfg := escapeTestConfig()
		n := buildFaultedFLOV(t, true, frac, cfg, fault.Spec{
			Seed: 5, LinkRate: 2e-4, TransientCycles: 40,
		})
		res := n.Run()
		if res.FaultsInjected == 0 {
			t.Fatalf("frac=%.1f: no faults injected", frac)
		}
		if res.LostPkts != 0 {
			t.Fatalf("frac=%.1f: %d packets dropped with transient-only faults", frac, res.LostPkts)
		}
		if res.Undelivered != 0 {
			t.Fatalf("frac=%.1f: %d flits stuck after drain", frac, res.Undelivered)
		}
		if s := checkAccounting(t, res); s != 0 {
			t.Fatalf("frac=%.1f: %d stragglers with transient-only faults", frac, s)
		}
	}
}

// TestGFLOVAONColumnLinkFault: a permanent dead link inside the east-most
// always-on column — the spine every FLOV escape route leans on. Packets
// that can still route around it must deliver; any packet wedged on the
// broken escape path must be classified, not parked forever.
func TestGFLOVAONColumnLinkFault(t *testing.T) {
	cfg := escapeTestConfig()
	mesh, err := topology.NewMesh(cfg.Width, cfg.Height)
	if err != nil {
		t.Fatal(err)
	}
	// The vertical link between the AON column's two middle routers.
	aonMid := mesh.ID(mesh.AONColumn(), 1)
	n := buildFaultedFLOV(t, true, 0.5, cfg, fault.Spec{
		Schedule:    []fault.Event{{At: 800, Kind: "link", Node: aonMid, Dir: "S"}},
		DropTimeout: 400,
	})
	res := n.Run()
	if res.LinkFaults != 1 {
		t.Fatalf("scheduled AON-column link kill not recorded: %d", res.LinkFaults)
	}
	stragglers := checkAccounting(t, res)
	t.Logf("AON link fault: offered=%d delivered=%d lost=%d stragglers=%d",
		res.OfferedPkts, res.Packets, res.LostPkts, stragglers)
}

// TestGFLOVCornerRouterFault: the south-east corner router is in the AON
// column and terminates the escape ring; killing it permanently is the
// nastiest single-point failure for the escape subnetwork. The run must
// complete with full accounting.
func TestGFLOVCornerRouterFault(t *testing.T) {
	cfg := escapeTestConfig()
	mesh, err := topology.NewMesh(cfg.Width, cfg.Height)
	if err != nil {
		t.Fatal(err)
	}
	corner := mesh.ID(mesh.Width-1, mesh.Height-1)
	n := buildFaultedFLOV(t, true, 0.5, cfg, fault.Spec{
		Schedule:    []fault.Event{{At: 800, Kind: "router", Node: corner}},
		DropTimeout: 400,
	})
	res := n.Run()
	if res.RouterFaults != 1 {
		t.Fatalf("corner router kill not recorded: %d", res.RouterFaults)
	}
	if res.LostPkts == 0 {
		t.Fatal("no classified losses with a dead corner router (its own traffic is unreachable)")
	}
	stragglers := checkAccounting(t, res)
	t.Logf("corner router fault: offered=%d delivered=%d lost=%d stragglers=%d",
		res.OfferedPkts, res.Packets, res.LostPkts, stragglers)
}

// TestRFLOVGatedRouterPlusDeadLink: rFLOV with a permanent interior link
// fault layered on top of gating. The combination must classify or
// deliver every packet.
func TestRFLOVGatedRouterPlusDeadLink(t *testing.T) {
	cfg := escapeTestConfig()
	n := buildFaultedFLOV(t, false, 0.5, cfg, fault.Spec{
		Schedule: []fault.Event{
			{At: 800, Kind: "link", Node: 5, Dir: "E"},
			{At: 1200, Kind: "link", Node: 9, Dir: "N"},
		},
		DropTimeout: 400,
	})
	res := n.Run()
	if res.LinkFaults != 2 {
		t.Fatalf("scheduled link kills not recorded: %d", res.LinkFaults)
	}
	stragglers := checkAccounting(t, res)
	t.Logf("rFLOV dead links: offered=%d delivered=%d lost=%d stragglers=%d",
		res.OfferedPkts, res.Packets, res.LostPkts, stragglers)
}

// TestGFLOVTransientFaultDeterminism: a gated FLOV run with both rate
// and scheduled faults is byte-stable across rebuilds (JSON of Results).
func TestGFLOVTransientFaultDeterminism(t *testing.T) {
	run := func() network.Results {
		cfg := escapeTestConfig()
		n := buildFaultedFLOV(t, true, 0.4, cfg, fault.Spec{
			Seed:     31,
			LinkRate: 1e-4, TransientCycles: 60,
			Schedule: []fault.Event{{At: 900, Kind: "router", Node: 6, Transient: 200}},
		})
		return n.Run()
	}
	a, b := run(), run()
	if a.Packets != b.Packets || a.LostPkts != b.LostPkts ||
		a.FaultsInjected != b.FaultsInjected || a.AvgLatency != b.AvgLatency {
		t.Fatalf("fault runs diverge:\na: %+v\nb: %+v", a, b)
	}
}
