package core

import (
	"fmt"
	"testing"

	"flov/internal/config"
	"flov/internal/gating"
	"flov/internal/network"
	"flov/internal/sim"
	"flov/internal/topology"
	"flov/internal/traffic"
)

// churnSchedule re-draws the gated set every `period` cycles with varying
// fractions — an adversarial OS that constantly consolidates threads.
func churnSchedule(t *testing.T, mesh topology.Mesh, total, period int64, seed uint64) *gating.Schedule {
	t.Helper()
	rng := sim.NewRNG(seed)
	var events []gating.Event
	fracs := []float64{0.1, 0.5, 0.3, 0.7, 0.2, 0.6, 0.4, 0.8}
	i := 0
	for at := int64(0); at < total; at += period {
		events = append(events, gating.Event{
			At:    at,
			Gated: gating.FractionGated(mesh, fracs[i%len(fracs)], nil, rng.Fork(uint64(i))),
		})
		i++
	}
	sched, err := gating.New(mesh.N(), events)
	if err != nil {
		t.Fatal(err)
	}
	return sched
}

// TestChurnStress runs both FLOV protocols under frequent random gating
// changes and live traffic: every packet must still be delivered, the
// rFLOV adjacency invariant must hold throughout, and the run must
// remain deterministic.
func TestChurnStress(t *testing.T) {
	for _, generalized := range []bool{false, true} {
		for _, period := range []int64{500, 2000} {
			name := fmt.Sprintf("gen=%v/period=%d", generalized, period)
			t.Run(name, func(t *testing.T) {
				cfg := config.Default()
				cfg.TotalCycles = 20_000
				cfg.WarmupCycles = 1_000
				mesh, _ := topology.NewMesh(cfg.Width, cfg.Height)
				sched := churnSchedule(t, mesh, cfg.TotalCycles, period, 77)
				gen := traffic.NewGenerator(traffic.Uniform, mesh, nil)
				var mech *Mechanism
				if generalized {
					mech = NewGFLOV()
				} else {
					mech = NewRFLOV()
				}
				n, err := network.New(cfg, mech, sched, gen, 0.04)
				if err != nil {
					t.Fatal(err)
				}

				// Step manually so invariants can be checked per epoch.
				for n.Now() < cfg.TotalCycles {
					n.Step()
					if !generalized && n.Now()%251 == 0 {
						assertNoAdjacentSleepers(t, n, mech)
					}
				}
				n.StopGeneration(n.Now())
				deadline := n.Now() + cfg.DrainCycles
				for n.Now() < deadline && !n.Drained() {
					n.Step()
				}
				res := n.Collect()
				if res.Undelivered != 0 {
					t.Fatalf("%d undelivered flits after churn", res.Undelivered)
				}
				sleeps, wakes, aborts := mech.SleepStats()
				if sleeps == 0 || wakes == 0 {
					t.Fatalf("no churn happened: sleeps=%d wakes=%d", sleeps, wakes)
				}
				t.Logf("%s: pkts=%d lat=%.1f sleeps=%d wakes=%d aborts=%d",
					name, res.Packets, res.AvgLatency, sleeps, wakes, aborts)
			})
		}
	}
}

func assertNoAdjacentSleepers(t *testing.T, n *network.Network, mech *Mechanism) {
	t.Helper()
	for _, id := range mech.GatedRouterIDs() {
		for d := topology.Direction(0); d < topology.NumLinkDirs; d++ {
			nb := n.Mesh.Neighbor(id, d)
			if nb >= 0 && mech.RouterState(nb) == Sleep {
				t.Fatalf("cycle %d: rFLOV adjacency violation: %d and %d both asleep", n.Now(), id, nb)
			}
		}
	}
}

// TestChurnHighLoad pushes near-saturation load through gFLOV while the
// mask churns: a liveness test for the handshake under congestion.
func TestChurnHighLoad(t *testing.T) {
	cfg := config.Default()
	cfg.TotalCycles = 15_000
	cfg.WarmupCycles = 1_000
	cfg.DrainCycles = 60_000
	mesh, _ := topology.NewMesh(cfg.Width, cfg.Height)
	sched := churnSchedule(t, mesh, cfg.TotalCycles, 3_000, 13)
	gen := traffic.NewGenerator(traffic.Uniform, mesh, nil)
	n, err := network.New(cfg, NewGFLOV(), sched, gen, 0.12)
	if err != nil {
		t.Fatal(err)
	}
	res := n.Run()
	if res.Undelivered != 0 {
		t.Fatalf("%d undelivered flits at high load", res.Undelivered)
	}
	t.Logf("high load: %s escape=%.3f", res, res.EscapeFrac)
}

// TestManyMeshSizes exercises non-8x8 topologies, including rectangular
// meshes, for both protocols.
func TestManyMeshSizes(t *testing.T) {
	sizes := [][2]int{{4, 4}, {4, 8}, {8, 4}, {16, 16}, {5, 7}}
	for _, sz := range sizes {
		for _, generalized := range []bool{false, true} {
			name := fmt.Sprintf("%dx%d/gen=%v", sz[0], sz[1], generalized)
			t.Run(name, func(t *testing.T) {
				if sz[0]*sz[1] >= 256 && testing.Short() {
					t.Skip("large mesh")
				}
				cfg := config.Default()
				cfg.Width, cfg.Height = sz[0], sz[1]
				cfg.TotalCycles = 12_000
				cfg.WarmupCycles = 1_000
				mesh, err := topology.NewMesh(cfg.Width, cfg.Height)
				if err != nil {
					t.Fatal(err)
				}
				mask := gating.FractionGated(mesh, 0.5, nil, sim.NewRNG(5))
				gen := traffic.NewGenerator(traffic.Uniform, mesh, nil)
				var mech network.Mechanism
				if generalized {
					mech = NewGFLOV()
				} else {
					mech = NewRFLOV()
				}
				n, err := network.New(cfg, mech, gating.Static(mask), gen, 0.02)
				if err != nil {
					t.Fatal(err)
				}
				res := n.Run()
				if res.Packets == 0 || res.Undelivered != 0 {
					t.Fatalf("packets=%d undelivered=%d", res.Packets, res.Undelivered)
				}
			})
		}
	}
}

// TestAllPatternsAllProtocols covers every synthetic pattern.
func TestAllPatternsAllProtocols(t *testing.T) {
	patterns := []traffic.Pattern{
		traffic.Uniform, traffic.Tornado, traffic.Transpose,
		traffic.BitComplement, traffic.Neighbor, traffic.Hotspot,
	}
	cfg := config.Default()
	cfg.TotalCycles = 10_000
	cfg.WarmupCycles = 1_000
	mesh, _ := topology.NewMesh(cfg.Width, cfg.Height)
	hotspots := []int{mesh.ID(7, 0), mesh.ID(7, 7)} // AON column: always on
	for _, p := range patterns {
		for _, generalized := range []bool{false, true} {
			t.Run(fmt.Sprintf("%v/gen=%v", p, generalized), func(t *testing.T) {
				mask := gating.FractionGated(mesh, 0.4, nil, sim.NewRNG(3))
				gen := traffic.NewGenerator(p, mesh, hotspots)
				var mech network.Mechanism
				if generalized {
					mech = NewGFLOV()
				} else {
					mech = NewRFLOV()
				}
				n, err := network.New(cfg, mech, gating.Static(mask), gen, 0.02)
				if err != nil {
					t.Fatal(err)
				}
				res := n.Run()
				if res.Undelivered != 0 {
					t.Fatalf("%d undelivered", res.Undelivered)
				}
			})
		}
	}
}
