package core

import (
	"testing"

	"flov/internal/traffic"
)

// TestInvariantsUnderGating steps FLOV networks cycle by cycle and runs
// the full structural invariant walk (buffer bounds, flit conservation,
// per-VC credit conservation) after every cycle, independent of the
// flovdebug build tag. Half the cores are gated, so the walk crosses
// plenty of sleep/drain/wakeup windows and FLOV latch traffic.
func TestInvariantsUnderGating(t *testing.T) {
	for _, generalized := range []bool{false, true} {
		name := "rFLOV"
		if generalized {
			name = "gFLOV"
		}
		t.Run(name, func(t *testing.T) {
			const total = 6000
			n, _ := buildFLOV(t, generalized, 0.5, 0.05, total, traffic.Uniform)
			for c := int64(0); c < total; c++ {
				n.Step()
				n.CheckInvariants()
			}
		})
	}
}
