package core

import (
	"flov/internal/noc"
	"flov/internal/router"
	"flov/internal/topology"
)

// onCtrl handles handshake messages while the router is Active or
// Draining (the baseline router dispatches non-credit control signals
// here during its Tick).
func (w *flovRouter) onCtrl(d topology.Direction, msg any) {
	m, ok := msg.(Msg)
	if !ok {
		return
	}
	switch m.Type {
	case MsgDrainReq:
		w.onDrainReq(d, m)
	case MsgDrainAbort:
		w.onDrainAbort(d, m)
	case MsgDrainReject:
		if m.To != w.id {
			w.relay(d, router.CtrlSignal(m))
		} else if w.state == Draining {
			w.abortDrain()
		}
	case MsgDrainDone:
		if m.To != w.id {
			w.relay(d, router.CtrlSignal(m))
		} else if w.state == Draining {
			w.doneNeeded[d] = false
		}
	case MsgSleep:
		w.onSleep(d, m)
	case MsgWakeupReq:
		w.onWakeupReq(d, m)
	case MsgWakeupAbort:
		w.onWakeupAbort(d, m)
	case MsgAwake:
		w.onAwake(d, m)
	case MsgCreditSync:
		w.onCreditSync(d, m)
	case MsgWakeTarget:
		// Already awake (the requester raced our wakeup) — nothing to do
		// if it names us; otherwise pass it along its line.
		if m.Target != w.id {
			w.relay(d, router.CtrlSignal(m))
		}
	}
}

// onDrainReq handles a logical partner entering Draining.
func (w *flovRouter) onDrainReq(d topology.Direction, m Msg) {
	switch w.state {
	case Draining:
		// Simultaneous drains on one line: the smaller router id wins.
		if m.From < w.id {
			w.abortDrain()
			w.acceptDrainReq(d, m)
		} else {
			w.send(d, Msg{Type: MsgDrainReject, From: w.id, To: m.From})
		}
	default: // Active
		w.acceptDrainReq(d, m)
	}
}

// acceptDrainReq records the partner's Draining state and schedules the
// drain_done reply for once no packets remain committed that way.
func (w *flovRouter) acceptDrainReq(d topology.Direction, m Msg) {
	w.r.ReRoute(d)
	if m.From == w.physID[d] {
		w.physState[d] = Draining
	}
	if m.From == w.logID[d] {
		w.logState[d] = Draining
	}
	w.addOwe(d, m.From)
}

// onDrainAbort clears a partner's Draining state.
func (w *flovRouter) onDrainAbort(d topology.Direction, m Msg) {
	w.r.ReRoute(d)
	if m.From == w.physID[d] {
		w.physState[d] = Active
	}
	if m.From == w.logID[d] {
		w.logState[d] = Active
	}
	w.removeOwe(d, m.From)
}

// onSleep performs the credit copy-up of Fig. 3 (d)-(e): the sleeping
// partner's far-side credit counters become ours for this output, its
// far-side logical neighbor becomes our logical neighbor, and new packet
// transmissions over the fly-over path may begin.
func (w *flovRouter) onSleep(d topology.Direction, m Msg) {
	w.r.ReRoute(d)
	out := w.r.Out(d)
	out.SetZero()
	if m.Counts != nil {
		out.CopyCounts(m.Counts)
	}
	if router.TraceCredit != nil {
		router.TraceCredit(w.id, d, -1, 0, "copy-sleep")
	}
	// The copy-up snapshot is authoritative; any pending sync is moot.
	w.awaitSync[d] = false
	w.logID[d] = m.LogID
	if m.LogID >= 0 {
		w.logState[d] = m.LogState
	} else {
		w.logState[d] = Active
	}
	if m.From == w.physID[d] {
		w.physState[d] = Sleep
	}
	w.removeOwe(d, m.From)
}

// onWakeupReq handles a router on our line powering back up.
func (w *flovRouter) onWakeupReq(d topology.Direction, m Msg) {
	w.r.ReRoute(d)
	if w.state == Draining {
		// Draining-Wakeup pairs are forbidden and Wakeup has priority.
		w.abortDrain()
	}
	if m.From == w.physID[d] {
		w.physState[d] = Wakeup
	}
	// Unconditional: somewhere on this line a router is powering up, so
	// no new packets may be committed across it until its MsgAwake (its
	// latches must drain for it to finish).
	w.logState[d] = Wakeup
	w.addOwe(d, m.From)
}

// onWakeupAbort unfreezes a line whose waker timed out and went back to
// Sleep; it will retry after a backoff.
func (w *flovRouter) onWakeupAbort(d topology.Direction, m Msg) {
	w.r.ReRoute(d)
	if m.From == w.physID[d] {
		w.physState[d] = Sleep
	}
	w.logState[d] = Active
	w.removeOwe(d, m.From)
}

// onAwake finishes a partner's wakeup: it becomes the logical neighbor
// with empty buffers (full credits), and we send it a credit sync for our
// input buffers so it can track us as its downstream.
func (w *flovRouter) onAwake(d topology.Direction, m Msg) {
	w.r.ReRoute(d)
	w.logID[d] = m.From
	w.logState[d] = Active
	if m.From == w.physID[d] {
		w.physState[d] = Active
	}
	if router.TraceCredit != nil {
		router.TraceCredit(w.id, d, -1, 0, "full-awake")
	}
	w.r.Out(d).SetFull()
	// A full reset supersedes any pending credit sync on this port (the
	// sync we were waiting for may have been consumed by this router
	// while it was still waking).
	w.awaitSync[d] = false
	w.removeOwe(d, m.From)
	w.send(d, Msg{Type: MsgCreditSync, From: w.id, To: m.From, Counts: w.inputFreeCounts(d)})
}

// onCreditSync applies a reply to our own MsgAwake: rebuild the output
// credit counters toward the replying logical neighbor. Allocation state
// is preserved (a packet may already hold a VC while its credits were
// still zero). From here on, per-flit credits from this direction are
// live again.
func (w *flovRouter) onCreditSync(d topology.Direction, m Msg) {
	if m.To != w.id {
		w.relay(d, router.CtrlSignal(m))
		return
	}
	if !w.awaitSync[d] {
		// A newer authority (the partner's own MsgAwake SetFull, or a
		// MsgSleep copy-up) already reset this port while the sync was
		// in flight; applying the older snapshot would erase credits
		// consumed since. Simultaneous wakeups of two logical partners
		// hit exactly this interleaving.
		return
	}
	w.awaitSync[d] = false
	w.r.Out(d).CopyCounts(m.Counts)
	if router.TraceCredit != nil {
		router.TraceCredit(w.id, d, -1, 0, "copy-sync")
	}
}

// inputFreeCounts snapshots the free slots of every VC on input port d,
// accounting for flits still in flight on the input link (their slots
// are already spoken for).
func (w *flovRouter) inputFreeCounts(d topology.Direction) []int {
	vcs := w.cfg.VCsTotal()
	free := make([]int, vcs)
	for v := 0; v < vcs; v++ {
		free[v] = w.cfg.BufferDepth - w.r.InVC(d, v).Len()
	}
	if q := w.r.Ports[d].InFlit; q != nil {
		q.Each(func(f *noc.Flit) { free[f.VC]-- })
	}
	return free
}
