package core

import (
	"fmt"

	"flov/internal/noc"
	"flov/internal/topology"
)

// RouterState is the serializable mutable state of one FLOV router
// wrapper: the power FSM, both PSR sets, the latch datapath, handshake
// bookkeeping and the transition counters. Structural fields (ids,
// never-gate, fly-over dimensions, hooks) are rebuilt by Attach.
type RouterState struct {
	State     PowerState
	CoreGated bool

	PhysState []PowerState // [NumLinkDirs]
	LogID     []int        // [NumLinkDirs]
	LogState  []PowerState // [NumLinkDirs]

	Latch    []noc.FlitState // occupied latches only; LatchDir aligns
	LatchDir []int

	DoneNeeded []bool  // [NumLinkDirs]
	OweDone    [][]int // [NumLinkDirs]
	AwaitSync  []bool  // [NumLinkDirs]

	WantWake   bool
	PoweredAt  int64
	TransStart int64
	RetryAt    int64
	LastLocal  int64

	// wakeSent map as parallel target/cycle lists, in target order.
	WakeTargets []int
	WakeCycles  []int64

	Sleeps          int64
	Wakes           int64
	DrainAborts     int64
	WakeAborts      int64
	LatchTraversals int64
	SleepTraversals int64
}

// State is the serializable mutable state of the FLOV mechanism: one
// entry per router, in id order.
type State struct {
	Routers []RouterState
}

// CaptureState copies the mechanism's mutable state, registering latched
// flits' packets in t.
func (m *Mechanism) CaptureState(t *noc.PacketTable) State {
	var s State
	for _, w := range m.ws {
		rs := RouterState{
			State:      w.state,
			CoreGated:  w.coreGated,
			PhysState:  append([]PowerState(nil), w.physState[:]...),
			LogID:      append([]int(nil), w.logID[:]...),
			LogState:   append([]PowerState(nil), w.logState[:]...),
			DoneNeeded: append([]bool(nil), w.doneNeeded[:]...),
			AwaitSync:  append([]bool(nil), w.awaitSync[:]...),
			WantWake:   w.wantWake,
			PoweredAt:  w.poweredAt,
			TransStart: w.transStart,
			RetryAt:    w.retryAt,
			LastLocal:  w.lastLocal,

			Sleeps:          w.sleeps,
			Wakes:           w.wakes,
			DrainAborts:     w.drainAborts,
			WakeAborts:      w.wakeAborts,
			LatchTraversals: w.latchTraversals,
			SleepTraversals: w.sleepTraversals,
		}
		for d := 0; d < topology.NumLinkDirs; d++ {
			rs.OweDone = append(rs.OweDone, append([]int(nil), w.oweDone[d]...))
			if f := w.latch[d]; f != nil {
				rs.Latch = append(rs.Latch, noc.CaptureFlit(t, f))
				rs.LatchDir = append(rs.LatchDir, d)
			}
		}
		// Rate-limit memory, visited in node-id order so the capture is
		// deterministic without ranging over the map.
		for id := 0; id < len(m.ws); id++ {
			if at, ok := w.wakeSent[id]; ok {
				rs.WakeTargets = append(rs.WakeTargets, id)
				rs.WakeCycles = append(rs.WakeCycles, at)
			}
		}
		s.Routers = append(s.Routers, rs)
	}
	return s
}

// RestoreState overwrites the mechanism's mutable state from a capture.
func (m *Mechanism) RestoreState(s State, pkts []*noc.Packet) error {
	if len(s.Routers) != len(m.ws) {
		return fmt.Errorf("core: snapshot has %d routers, mechanism has %d", len(s.Routers), len(m.ws))
	}
	for id, rs := range s.Routers {
		if len(rs.PhysState) != topology.NumLinkDirs || len(rs.LogID) != topology.NumLinkDirs ||
			len(rs.LogState) != topology.NumLinkDirs || len(rs.DoneNeeded) != topology.NumLinkDirs ||
			len(rs.OweDone) != topology.NumLinkDirs || len(rs.AwaitSync) != topology.NumLinkDirs {
			return fmt.Errorf("core: router %d snapshot has malformed direction vectors", id)
		}
		if len(rs.Latch) != len(rs.LatchDir) || len(rs.WakeTargets) != len(rs.WakeCycles) {
			return fmt.Errorf("core: router %d snapshot has misaligned parallel lists", id)
		}
		w := m.ws[id]
		w.state = rs.State
		w.coreGated = rs.CoreGated
		copy(w.physState[:], rs.PhysState)
		copy(w.logID[:], rs.LogID)
		copy(w.logState[:], rs.LogState)
		copy(w.doneNeeded[:], rs.DoneNeeded)
		copy(w.awaitSync[:], rs.AwaitSync)
		for d := 0; d < topology.NumLinkDirs; d++ {
			w.oweDone[d] = append(w.oweDone[d][:0], rs.OweDone[d]...)
			w.latch[d] = nil
		}
		for i, fs := range rs.Latch {
			d := rs.LatchDir[i]
			if d < 0 || d >= topology.NumLinkDirs {
				return fmt.Errorf("core: router %d snapshot latch direction %d out of range", id, d)
			}
			w.latch[d] = fs.Materialize(pkts)
		}
		w.wantWake = rs.WantWake
		w.poweredAt = rs.PoweredAt
		w.transStart = rs.TransStart
		w.retryAt = rs.RetryAt
		w.lastLocal = rs.LastLocal
		w.wakeSent = make(map[int]int64, len(rs.WakeTargets))
		for i, target := range rs.WakeTargets {
			w.wakeSent[target] = rs.WakeCycles[i]
		}
		w.sleeps = rs.Sleeps
		w.wakes = rs.Wakes
		w.drainAborts = rs.DrainAborts
		w.wakeAborts = rs.WakeAborts
		w.latchTraversals = rs.LatchTraversals
		w.sleepTraversals = rs.SleepTraversals
	}
	return nil
}
