// Package core implements the paper's contribution: the FLOV router
// architecture and the two distributed handshake protocols (restricted
// FLOV and generalized FLOV).
//
// Each baseline router is wrapped by a flovRouter that adds:
//   - the Fig. 2 power-state FSM (Active / Draining / Sleep / Wakeup),
//   - Power State Registers for physical and logical neighbors,
//   - HandShake Control (HSC) message handling with relaying across
//     power-gated routers (gFLOV),
//   - the FLOV latch datapath that flies flits over sleeping routers,
//   - credit copy-up and relaying so logical neighbors stay flow-
//     controlled without waking intermediate routers.
//
// Everything is message-driven over the per-link control channels: no
// router ever reads another router's state directly, matching the
// paper's claim of a fully distributed mechanism.
package core

import "fmt"

// PowerState is a router's position in the Fig. 2 state machine.
type PowerState uint8

// Power states.
const (
	Active PowerState = iota
	Draining
	Sleep
	Wakeup
)

// String names the state.
func (s PowerState) String() string {
	switch s {
	case Active:
		return "Active"
	case Draining:
		return "Draining"
	case Sleep:
		return "Sleep"
	case Wakeup:
		return "Wakeup"
	default:
		return fmt.Sprintf("PowerState(%d)", int(s))
	}
}

// MsgType enumerates HSC handshake messages.
type MsgType uint8

// Handshake message types. All travel on the ordered per-link control
// channels; power-gated routers relay them along the line (updating their
// own PSRs as they pass), so two active logical neighbors can handshake
// across any number of sleeping routers.
const (
	// MsgDrainReq announces the sender entered Draining.
	MsgDrainReq MsgType = iota
	// MsgDrainAbort announces the sender returned from Draining to Active.
	MsgDrainAbort
	// MsgDrainReject tells a draining router to abort (receiver is
	// draining with a smaller id, or is waking up — wakeup has priority).
	MsgDrainReject
	// MsgDrainDone tells a draining/waking partner the sender has no
	// packets still committed toward it.
	MsgDrainDone
	// MsgSleep announces the sender power-gated itself; carries the
	// credit counts of the sender's far-side output plus the identity and
	// state of the sender's far-side logical neighbor (credit copy-up and
	// logical-PSR update, Fig. 3 (d)-(e)).
	MsgSleep
	// MsgWakeupReq announces the sender entered Wakeup.
	MsgWakeupReq
	// MsgWakeupAbort announces the sender gave up on a wakeup attempt
	// (transition timeout) and went back to Sleep; it will retry after a
	// backoff. Implementation-level liveness addition: under heavy OS
	// churn, many simultaneous wakeups can freeze each other's lines
	// into a circular wait, and aborting releases it (see DESIGN.md).
	MsgWakeupAbort
	// MsgAwake announces the sender finished waking and is Active; the
	// receiver resets credits toward the sender to full and replies with
	// MsgCreditSync.
	MsgAwake
	// MsgCreditSync carries the receiver-side free-slot counts so a
	// freshly woken router can rebuild its credit counters.
	MsgCreditSync
	// MsgWakeTarget asks the (power-gated) Target router to wake up
	// because a packet destined to its core is being held upstream.
	MsgWakeTarget
)

// String names the message type.
func (t MsgType) String() string {
	switch t {
	case MsgDrainReq:
		return "DrainReq"
	case MsgDrainAbort:
		return "DrainAbort"
	case MsgDrainReject:
		return "DrainReject"
	case MsgDrainDone:
		return "DrainDone"
	case MsgSleep:
		return "Sleep"
	case MsgWakeupReq:
		return "WakeupReq"
	case MsgWakeupAbort:
		return "WakeupAbort"
	case MsgAwake:
		return "Awake"
	case MsgCreditSync:
		return "CreditSync"
	case MsgWakeTarget:
		return "WakeTarget"
	default:
		return fmt.Sprintf("MsgType(%d)", int(t))
	}
}

// Msg is one HSC handshake message.
type Msg struct {
	Type MsgType
	From int // originating router id

	// Target is the router MsgWakeTarget addresses; -1 otherwise.
	Target int

	// To addresses point-to-point replies (MsgDrainDone, MsgDrainReject,
	// MsgCreditSync) to a specific router: every router on the line
	// forwards a reply not addressed to it, so a reply can never be
	// mis-consumed by another router that happens to be handshaking on
	// the same line. -1 for broadcast announcements.
	To int

	// Counts carries per-VC credit counts: for MsgSleep, the sender's
	// far-side output counters (credit copy-up); for MsgCreditSync, the
	// sender's input-buffer free slots.
	Counts []int

	// LogID/LogState describe the sender's far-side logical neighbor
	// (MsgSleep): the receiver's new logical neighbor in that direction.
	LogID    int
	LogState PowerState
}

// String renders a compact debug form.
func (m Msg) String() string {
	return fmt.Sprintf("%s(from %d)", m.Type, m.From)
}
