package core

// Regression tests for the distributed-protocol races found by the
// gating-churn stress campaign (see DESIGN.md, "Protocol completions
// beyond the paper's text"). Each test pins one fix with a white-box
// scenario on a bare network.

import (
	"testing"

	"flov/internal/router"
	"flov/internal/topology"
)

// drainCtrl pops every control signal currently visible on a port's
// outbound control channel at cycle `at`.
func drainCtrl(w *flovRouter, d topology.Direction, at int64) []router.Signal {
	var out []router.Signal
	q := w.r.Ports[d].OutCtrl
	if q == nil {
		return nil
	}
	q.Drain(at, func(s router.Signal) { out = append(out, s) })
	return out
}

// msgsOf filters handshake messages from signals.
func msgsOf(sigs []router.Signal) []Msg {
	var ms []Msg
	for _, s := range sigs {
		if !s.IsCredit {
			ms = append(ms, s.Msg.(Msg))
		}
	}
	return ms
}

// Fix 1: control signals relayed by a power-gated router are registered —
// 2 cycles per hop, matching the FLOV latch datapath — so a drain_done
// can never overtake data flits on the same line.
func TestRelayedControlIsRegistered(t *testing.T) {
	_, mech := newBareNet(t, true)
	w := mech.ws[27]
	w.state = Sleep
	w.coreGated = true // keep it asleep: no wakeup trigger during the test
	w.now = 100

	// A credit arriving from the East must appear on the West output no
	// earlier than two cycles later.
	w.r.Ports[topology.East].InCtrl.Push(99, router.CreditSignal(2))
	w.Tick(100) // relays
	outQ := w.r.Ports[topology.West].OutCtrl
	if _, ok := outQ.Pop(101); ok {
		t.Fatal("relayed credit visible after 1 cycle — it could overtake data flits")
	}
	s, ok := outQ.Pop(102)
	if !ok || !s.IsCredit || s.VC != 2 {
		t.Fatalf("relayed credit not visible after 2 cycles: %v %v", s, ok)
	}
}

// Fix 2: drain_done replies are addressed; a sleeping router drops a late
// reply addressed to itself instead of relaying it into the next draining
// router on the line.
func TestSleepingRouterDropsStaleOwnReply(t *testing.T) {
	_, mech := newBareNet(t, true)
	w := mech.ws[27]
	w.state = Sleep
	w.coreGated = true

	w.r.Ports[topology.East].InCtrl.Push(99, router.CtrlSignal(Msg{Type: MsgDrainDone, From: 28, To: 27}))
	w.Tick(100)
	if sigs := drainCtrl(w, topology.West, 200); len(sigs) != 0 {
		t.Fatalf("stale reply relayed onward: %v", sigs)
	}

	// A reply for someone else must be relayed.
	w.r.Ports[topology.East].InCtrl.Push(100, router.CtrlSignal(Msg{Type: MsgDrainDone, From: 28, To: 25}))
	w.Tick(101)
	ms := msgsOf(drainCtrl(w, topology.West, 200))
	if len(ms) != 1 || ms[0].Type != MsgDrainDone || ms[0].To != 25 {
		t.Fatalf("foreign reply not relayed: %v", ms)
	}
}

// Fix 5: a drain/wakeup request whose whole line is power-gated is
// answered with a drain_done by the router at the mesh edge, on behalf of
// the dead end, instead of dying silently.
func TestDeadEndRequestBounces(t *testing.T) {
	_, mech := newBareNet(t, true)
	// Router 7 = (7,0): no East neighbor beyond it... use router 6's east
	// neighbor 7? Use an edge-adjacent sleeping router: router 57 = (1,7)
	// top row; a request travelling north into it cannot continue.
	w := mech.ws[57]
	w.state = Sleep
	w.coreGated = true
	w.flovY = false // top-row router: no vertical FLOV dimension

	// Request arrives on the South port heading North (no neighbor).
	w.r.Ports[topology.South].InCtrl.Push(99, router.CtrlSignal(Msg{Type: MsgWakeupReq, From: 49, To: -1}))
	w.Tick(100)
	ms := msgsOf(drainCtrl(w, topology.South, 200))
	found := false
	for _, m := range ms {
		if m.Type == MsgDrainDone && m.To == 49 {
			found = true
		}
	}
	if !found {
		t.Fatalf("dead-end wakeup request not bounced: %v", ms)
	}
}

// Fix 4b: a credit sync that was superseded (its port already reset by a
// newer MsgAwake or MsgSleep) must be dropped, not applied — applying it
// would erase credits consumed since the reset.
func TestSupersededCreditSyncDropped(t *testing.T) {
	_, mech := newBareNet(t, true)
	w := mech.ws[27]
	d := topology.East
	out := w.r.Out(d)
	// Simulate: partner's Awake already reset the port to full and two
	// credits were since consumed.
	out.SetFull()
	w.awaitSync[int(d)] = false
	out.Consume(0)
	out.Consume(0)

	w.onCreditSync(d, Msg{Type: MsgCreditSync, From: 28, To: 27, Counts: []int{6, 6, 6, 6}})
	if out.Credits[0] != 4 {
		t.Fatalf("superseded sync applied: credits[0] = %d, want 4", out.Credits[0])
	}

	// A sync that IS awaited applies.
	w.awaitSync[int(d)] = true
	w.onCreditSync(d, Msg{Type: MsgCreditSync, From: 28, To: 27, Counts: []int{3, 3, 3, 3}})
	if out.Credits[0] != 3 || w.awaitSync[int(d)] {
		t.Fatalf("awaited sync not applied: credits[0] = %d awaitSync=%v", out.Credits[0], w.awaitSync[int(d)])
	}
}

// Fix 4a: after a wakeup commit, credits arriving before the sync are
// dropped (they are already included in the sync snapshot).
func TestPostWakeupCreditsQuarantined(t *testing.T) {
	_, mech := newBareNet(t, true)
	w := mech.ws[27]
	d := topology.East
	w.awaitSync[int(d)] = true
	w.r.Out(d).SetZero()

	w.state = Active
	w.r.Ports[d].InCtrl.Push(99, router.CreditSignal(0))
	w.r.Tick(100)
	if got := w.r.Out(d).Credits[0]; got != 0 {
		t.Fatalf("quarantined credit applied: %d", got)
	}
	// After the sync, credits flow again.
	w.onCreditSync(d, Msg{Type: MsgCreditSync, From: 28, To: 27, Counts: []int{2, 2, 2, 2}})
	w.r.Ports[d].InCtrl.Push(100, router.CreditSignal(0))
	w.r.Tick(101)
	if got := w.r.Out(d).Credits[0]; got != 3 {
		t.Fatalf("post-sync credit lost: %d", got)
	}
}

// Fix 6: aborting a drain announces to EVERY handshake partner, including
// those that already sent their drain_done — otherwise they keep the
// aborter marked Draining and freeze the line forever.
func TestAbortDrainAnnouncesToAllPartners(t *testing.T) {
	_, mech := newBareNet(t, true)
	w := mech.ws[27]
	w.now = 100
	w.startDrain(100)
	// Two partners replied already.
	w.doneNeeded[int(topology.North)] = false
	w.doneNeeded[int(topology.East)] = false
	// Drain the request messages so only the aborts remain.
	for d := 0; d < topology.NumLinkDirs; d++ {
		drainCtrl(w, topology.Direction(d), 200)
	}

	w.abortDrain()
	for d := 0; d < topology.NumLinkDirs; d++ {
		ms := msgsOf(drainCtrl(w, topology.Direction(d), 300))
		found := false
		for _, m := range ms {
			if m.Type == MsgDrainAbort {
				found = true
			}
		}
		if !found {
			t.Fatalf("no DrainAbort announced toward %v (partner would stay frozen)", topology.Direction(d))
		}
	}
	if w.state != Active {
		t.Fatalf("state after abort: %v", w.state)
	}
}

// Fix 3: a power-state change invalidates routes computed under the old
// state for packets that have not yet been granted a downstream VC.
func TestReRouteOnPowerChange(t *testing.T) {
	n, mech := newBareNet(t, true)
	w := mech.ws[27]
	r := n.Routers[27]

	// Put a packet in VCWaitVC toward East.
	p := n.NewPacket(27, 29, 0, 1)
	ivc := r.InVC(topology.Local, 0)
	ivc.OutDir = topology.East
	ivc.RCCycle = 5
	ivc.State = 2 // noc.VCWaitVC
	_ = p

	w.onSleep(topology.East, Msg{Type: MsgSleep, From: 28, To: -1, LogID: 29, LogState: Active, Counts: []int{6, 6, 6, 6}})
	if ivc.State != 1 { // noc.VCRouting
		t.Fatalf("pending route not invalidated on MsgSleep: state=%v", ivc.State)
	}
}

// Transition timeout: a Draining router that cannot quiesce aborts and
// retries rather than freezing its lines forever.
func TestDrainTimeoutAborts(t *testing.T) {
	_, mech := newBareNet(t, true)
	w := mech.ws[27]
	w.coreGated = true
	w.now = 100
	w.startDrain(100)
	// A partner never replies; ticks pass the timeout.
	w.tickDraining(100 + int64(w.cfg.TransitionTimeout) + 1)
	if w.state != Active {
		t.Fatalf("drain did not time out: %v", w.state)
	}
	if w.retryAt <= 100 {
		t.Fatal("no retry backoff set")
	}
}

// Wakeup timeout: a Wakeup router that cannot quiesce goes back to Sleep
// (its latches never stopped forwarding, so this is safe) and announces
// the abort.
func TestWakeupTimeoutAborts(t *testing.T) {
	_, mech := newBareNet(t, true)
	w := mech.ws[27]
	w.state = Sleep
	w.coreGated = true
	w.wantWake = true
	w.now = 100
	w.startWakeup(100)
	if w.state != Wakeup {
		t.Fatal("wakeup did not start")
	}
	for d := 0; d < topology.NumLinkDirs; d++ {
		drainCtrl(w, topology.Direction(d), 5000) // discard the requests
	}
	w.now = 100 + int64(w.cfg.TransitionTimeout) + 1
	w.tickWakeup(w.now)
	if w.state != Sleep {
		t.Fatalf("wakeup did not abort to Sleep: %v", w.state)
	}
	ms := msgsOf(drainCtrl(w, topology.East, 9000))
	found := false
	for _, m := range ms {
		if m.Type == MsgWakeupAbort {
			found = true
		}
	}
	if !found {
		t.Fatalf("no WakeupAbort announced: %v", ms)
	}
}
