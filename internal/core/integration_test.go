package core

import (
	"testing"

	"flov/internal/config"
	"flov/internal/gating"
	"flov/internal/network"
	"flov/internal/sim"
	"flov/internal/topology"
	"flov/internal/traffic"
)

// buildFLOV assembles a FLOV network with the given gated fraction.
func buildFLOV(t *testing.T, generalized bool, frac float64, rate float64, total int64, pattern traffic.Pattern) (*network.Network, *Mechanism) {
	t.Helper()
	cfg := config.Default()
	cfg.TotalCycles = total
	cfg.WarmupCycles = total / 10
	mesh, err := topology.NewMesh(cfg.Width, cfg.Height)
	if err != nil {
		t.Fatal(err)
	}
	mask := gating.FractionGated(mesh, frac, nil, sim.NewRNG(7))
	sched := gating.Static(mask)
	gen := traffic.NewGenerator(pattern, mesh, nil)
	var mech *Mechanism
	if generalized {
		mech = NewGFLOV()
	} else {
		mech = NewRFLOV()
	}
	n, err := network.New(cfg, mech, sched, gen, rate)
	if err != nil {
		t.Fatal(err)
	}
	return n, mech
}

func TestGFLOVUniformDelivers(t *testing.T) {
	for _, frac := range []float64{0.0, 0.2, 0.5, 0.8} {
		n, mech := buildFLOV(t, true, frac, 0.02, 30000, traffic.Uniform)
		res := n.Run()
		if res.Packets == 0 {
			t.Fatalf("frac=%.1f: no packets delivered", frac)
		}
		if res.Undelivered != 0 {
			t.Fatalf("frac=%.1f: %d undelivered flits (%s)", frac, res.Undelivered, res)
		}
		sleeps, _, _ := mech.SleepStats()
		if frac >= 0.2 && sleeps == 0 {
			t.Fatalf("frac=%.1f: no routers ever slept", frac)
		}
		t.Logf("frac=%.1f: %s gatedRouters=%d sleeps=%d", frac, res, res.GatedRouters, sleeps)
	}
}

func TestRFLOVUniformDelivers(t *testing.T) {
	for _, frac := range []float64{0.2, 0.5, 0.8} {
		n, mech := buildFLOV(t, false, frac, 0.02, 30000, traffic.Uniform)
		res := n.Run()
		if res.Packets == 0 || res.Undelivered != 0 {
			t.Fatalf("frac=%.1f: packets=%d undelivered=%d", frac, res.Packets, res.Undelivered)
		}
		// rFLOV invariant: no two adjacent routers gated simultaneously.
		gatedSet := map[int]bool{}
		for _, id := range mech.GatedRouterIDs() {
			gatedSet[id] = true
		}
		for id := range gatedSet {
			for d := topology.Direction(0); d < topology.NumLinkDirs; d++ {
				nb := n.Mesh.Neighbor(id, d)
				if nb >= 0 && gatedSet[nb] {
					t.Fatalf("frac=%.1f: adjacent gated routers %d and %d under rFLOV", frac, id, nb)
				}
			}
		}
		t.Logf("frac=%.1f: %s gatedRouters=%d", frac, res, res.GatedRouters)
	}
}

func TestGFLOVTornadoDelivers(t *testing.T) {
	n, _ := buildFLOV(t, true, 0.5, 0.02, 30000, traffic.Tornado)
	res := n.Run()
	if res.Packets == 0 || res.Undelivered != 0 {
		t.Fatalf("packets=%d undelivered=%d", res.Packets, res.Undelivered)
	}
	t.Logf("%s flovHopsSeen(breakdown FLOV)=%.2f", res, res.Breakdown.FLOV)
}

// AON column must never gate.
func TestAONColumnStaysOn(t *testing.T) {
	n, mech := buildFLOV(t, true, 0.8, 0.02, 20000, traffic.Uniform)
	res := n.Run()
	_ = res
	for y := 0; y < n.Cfg.Height; y++ {
		id := n.Mesh.ID(n.Cfg.Width-1, y)
		if mech.RouterState(id) == Sleep {
			t.Fatalf("AON router %d is power-gated", id)
		}
	}
}
