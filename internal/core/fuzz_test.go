package core

import (
	"fmt"
	"testing"

	"flov/internal/config"
	"flov/internal/gating"
	"flov/internal/network"
	"flov/internal/sim"
	"flov/internal/topology"
	"flov/internal/traffic"
)

// TestChurnManySeeds fuzzes the handshake protocols across many random
// gating timelines: every seed produces a different interleaving of
// drains, wakeups, aborts and traffic. Each run must deliver every flit.
func TestChurnManySeeds(t *testing.T) {
	seeds := []uint64{1, 2, 3, 5, 8, 13, 21, 34}
	if testing.Short() {
		seeds = seeds[:3]
	}
	for _, generalized := range []bool{false, true} {
		for _, seed := range seeds {
			seed, generalized := seed, generalized
			t.Run(fmt.Sprintf("gen=%v/seed=%d", generalized, seed), func(t *testing.T) {
				t.Parallel()
				cfg := config.Default()
				cfg.TotalCycles = 8_000
				cfg.WarmupCycles = 500
				cfg.DrainCycles = 30_000
				cfg.Seed = seed
				mesh, _ := topology.NewMesh(cfg.Width, cfg.Height)

				// Random timeline: mask changes at random intervals with
				// random fractions.
				rng := sim.NewRNG(seed * 977)
				var events []gating.Event
				at := int64(0)
				for at < cfg.TotalCycles {
					frac := 0.1 + 0.8*rng.Float64()
					events = append(events, gating.Event{
						At:    at,
						Gated: gating.FractionGated(mesh, frac, nil, rng.Fork(uint64(at)+1)),
					})
					at += 200 + int64(rng.Intn(1500))
				}
				sched, err := gating.New(cfg.N(), events)
				if err != nil {
					t.Fatal(err)
				}

				gen := traffic.NewGenerator(traffic.Uniform, mesh, nil)
				var mech network.Mechanism
				if generalized {
					mech = NewGFLOV()
				} else {
					mech = NewRFLOV()
				}
				rate := 0.01 + 0.05*rng.Float64()
				n, err := network.New(cfg, mech, sched, gen, rate)
				if err != nil {
					t.Fatal(err)
				}
				res := n.Run()
				if res.Undelivered != 0 {
					t.Fatalf("seed %d rate %.3f: %d undelivered flits", seed, rate, res.Undelivered)
				}
				if res.Packets == 0 {
					t.Fatalf("seed %d: no packets", seed)
				}
			})
		}
	}
}
