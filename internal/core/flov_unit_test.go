package core

import (
	"testing"

	"flov/internal/config"
	"flov/internal/gating"
	"flov/internal/network"
	"flov/internal/noc"
	"flov/internal/sim"
	"flov/internal/topology"
	"flov/internal/traffic"
)

// newBareNet builds a tiny gFLOV network for white-box wrapper tests.
func newBareNet(t *testing.T, generalized bool) (*network.Network, *Mechanism) {
	t.Helper()
	cfg := config.Default()
	cfg.TotalCycles = 1 << 30
	var mech *Mechanism
	if generalized {
		mech = NewGFLOV()
	} else {
		mech = NewRFLOV()
	}
	n, err := network.New(cfg, mech, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	return n, mech
}

func TestAllocOKTable(t *testing.T) {
	_, mech := newBareNet(t, true)
	w := mech.ws[27] // interior router
	d := int(topology.East)

	cases := []struct {
		phys, log PowerState
		logID     int
		want      bool
	}{
		{Active, Active, 28, true},
		{Draining, Draining, 28, false},
		{Wakeup, Wakeup, 28, false},
		{Sleep, Active, 29, true},    // stable fly-over path
		{Sleep, Draining, 29, false}, // logical partner draining
		{Sleep, Wakeup, 29, false},   // router on the line waking
		{Sleep, Active, -1, false},   // no powered router beyond (dead end)
	}
	for i, c := range cases {
		w.physState[d] = c.phys
		w.logState[d] = c.log
		w.logID[d] = c.logID
		if got := w.allocOK(topology.East); got != c.want {
			t.Errorf("case %d (%v/%v/%d): allocOK = %v want %v", i, c.phys, c.log, c.logID, got, c.want)
		}
	}
	if !w.allocOK(topology.Local) {
		t.Error("Local must always allow allocation")
	}
}

func TestDrainEligibility(t *testing.T) {
	for _, generalized := range []bool{false, true} {
		_, mech := newBareNet(t, generalized)
		w := mech.ws[27]
		now := int64(1000)

		// Not gated: never eligible.
		if w.drainEligible(now) {
			t.Fatal("eligible without a gated core")
		}
		w.coreGated = true
		w.lastLocal = now - int64(w.cfg.IdleThreshold) - 1
		if !w.drainEligible(now) {
			t.Fatalf("generalized=%v: should be eligible when idle and neighbors active", generalized)
		}
		// Too recent local activity.
		w.lastLocal = now - 1
		if w.drainEligible(now) {
			t.Fatal("eligible despite recent local traffic")
		}
		w.lastLocal = now - 100

		// Neighbor transitions block.
		w.physState[0] = Draining
		w.logState[0] = Draining
		if w.drainEligible(now) {
			t.Fatalf("generalized=%v: eligible with draining neighbor", generalized)
		}
		w.physState[0] = Active
		w.logState[0] = Active

		// rFLOV only: a sleeping physical neighbor blocks; gFLOV allows.
		w.physState[1] = Sleep
		w.logState[1] = Active
		w.logID[1] = mech.net.Mesh.Neighbor(w.physID[1], topology.East)
		got := w.drainEligible(now)
		if generalized && !got {
			t.Fatal("gFLOV: sleeping neighbor must not block draining")
		}
		if !generalized && got {
			t.Fatal("rFLOV: sleeping neighbor must block draining")
		}
	}
}

func TestAONNeverGates(t *testing.T) {
	_, mech := newBareNet(t, true)
	w := mech.ws[mech.net.Mesh.ID(7, 3)]
	if !w.neverGate {
		t.Fatal("AON-column router must be marked neverGate")
	}
	w.coreGated = true
	w.lastLocal = -1000
	if w.drainEligible(1000) {
		t.Fatal("AON router eligible to drain")
	}
}

func TestObservePSRUpdates(t *testing.T) {
	_, mech := newBareNet(t, true)
	w := mech.ws[27]
	d := topology.East
	nb := w.physID[int(d)]

	w.observe(d, Msg{Type: MsgDrainReq, From: nb})
	if w.physState[d] != Draining || w.logState[d] != Draining {
		t.Fatal("DrainReq not observed")
	}
	w.observe(d, Msg{Type: MsgDrainAbort, From: nb})
	if w.physState[d] != Active || w.logState[d] != Active {
		t.Fatal("DrainAbort not observed")
	}
	w.observe(d, Msg{Type: MsgSleep, From: nb, LogID: nb + 1, LogState: Active})
	if w.physState[d] != Sleep || w.logID[d] != nb+1 {
		t.Fatal("Sleep not observed")
	}
	w.observe(d, Msg{Type: MsgAwake, From: nb})
	if w.physState[d] != Active || w.logID[d] != nb || w.logState[d] != Active {
		t.Fatal("Awake not observed")
	}
}

func TestPowerViewFromPSR(t *testing.T) {
	_, mech := newBareNet(t, true)
	w := mech.ws[27]
	d := topology.North
	if !w.NeighborOn(27, d) {
		t.Fatal("fresh network: neighbor must be on")
	}
	w.physState[int(d)] = Sleep
	w.logID[int(d)] = 51
	if w.NeighborOn(27, d) {
		t.Fatal("sleeping neighbor reported on")
	}
	if w.LogicalNeighbor(27, d) != 51 {
		t.Fatal("logical neighbor not taken from PSR set 2")
	}
}

// TestWakeOnDestination gates one core, lets its router sleep, then sends
// a packet to it: the router must wake and the packet must be delivered.
func TestWakeOnDestination(t *testing.T) {
	cfg := config.Default()
	cfg.TotalCycles = 1 << 30
	mesh, _ := topology.NewMesh(cfg.Width, cfg.Height)
	target := mesh.ID(3, 3)
	mask := make([]bool, cfg.N())
	mask[target] = true
	mech := NewGFLOV()
	n, err := network.New(cfg, mech, gating.Static(mask), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Let the target router drain and sleep.
	for i := 0; i < 200 && mech.RouterState(target) != Sleep; i++ {
		n.Step()
	}
	if mech.RouterState(target) != Sleep {
		t.Fatal("target router never slept")
	}
	// Send it a packet from the west side.
	src := mesh.ID(0, 3)
	delivered := false
	n.NIs[target].OnDeliver = func(p *noc.Packet, now int64) { delivered = true }
	n.NIs[src].Enqueue(n.NewPacket(src, target, 0, cfg.PacketSize))
	for i := 0; i < 2000 && !delivered; i++ {
		n.Step()
	}
	if !delivered {
		t.Fatalf("packet to gated destination never delivered (router state %v)", mech.RouterState(target))
	}
	if mech.ws[target].wakes == 0 {
		t.Fatal("destination router never woke")
	}
}

// TestReSleepAfterWakeOnDest: after delivering, the still-gated core's
// router goes back to sleep.
func TestReSleepAfterWakeOnDest(t *testing.T) {
	cfg := config.Default()
	cfg.TotalCycles = 1 << 30
	mesh, _ := topology.NewMesh(cfg.Width, cfg.Height)
	target := mesh.ID(3, 3)
	mask := make([]bool, cfg.N())
	mask[target] = true
	mech := NewGFLOV()
	n, err := network.New(cfg, mech, gating.Static(mask), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		n.Step()
	}
	src := mesh.ID(3, 0)
	n.NIs[src].Enqueue(n.NewPacket(src, target, 0, cfg.PacketSize))
	slept := int64(0)
	for i := 0; i < 3000; i++ {
		n.Step()
		if mech.ws[target].sleeps >= 2 {
			slept = n.Now()
			break
		}
	}
	if slept == 0 {
		t.Fatalf("router did not re-sleep after serving the wake-on-dest packet (state %v, sleeps %d)",
			mech.RouterState(target), mech.ws[target].sleeps)
	}
}

// TestDeterminism: identical seeds give bit-identical results.
func TestDeterminism(t *testing.T) {
	run := func() network.Results {
		cfg := config.Default()
		cfg.TotalCycles = 15_000
		cfg.WarmupCycles = 1_000
		mesh, _ := topology.NewMesh(cfg.Width, cfg.Height)
		mask := gating.FractionGated(mesh, 0.5, nil, sim.NewRNG(3))
		gen := traffic.NewGenerator(traffic.Uniform, mesh, nil)
		n, err := network.New(cfg, NewGFLOV(), gating.Static(mask), gen, 0.04)
		if err != nil {
			t.Fatal(err)
		}
		return n.Run()
	}
	a, b := run(), run()
	if a.AvgLatency != b.AvgLatency || a.Packets != b.Packets ||
		a.TotalEnergyPJ != b.TotalEnergyPJ || a.GatedRouters != b.GatedRouters {
		t.Fatalf("nondeterministic results:\n%s\n%s", a, b)
	}
}

// TestCreditRestoration: after a run fully drains, every Active router's
// output credits toward an Active physical neighbor must be back at full
// buffer depth — credits are conserved end to end.
func TestCreditRestoration(t *testing.T) {
	cfg := config.Default()
	cfg.TotalCycles = 15_000
	cfg.WarmupCycles = 1_000
	mesh, _ := topology.NewMesh(cfg.Width, cfg.Height)
	mask := gating.FractionGated(mesh, 0.4, nil, sim.NewRNG(11))
	gen := traffic.NewGenerator(traffic.Uniform, mesh, nil)
	mech := NewGFLOV()
	n, err := network.New(cfg, mech, gating.Static(mask), gen, 0.03)
	if err != nil {
		t.Fatal(err)
	}
	res := n.Run()
	if res.Undelivered != 0 {
		t.Fatalf("undelivered flits: %d", res.Undelivered)
	}
	for id, w := range mech.ws {
		if w.state != Active {
			continue
		}
		for d := 0; d < topology.NumLinkDirs; d++ {
			nb := w.physID[d]
			if nb < 0 || mech.ws[nb].state != Active || w.physState[d] != Active {
				continue
			}
			out := n.Routers[id].Out(topology.Direction(d))
			for vc, c := range out.Credits {
				if c != cfg.BufferDepth {
					t.Fatalf("router %d dir %v vc %d: credits %d != depth %d after drain",
						id, topology.Direction(d), vc, c, cfg.BufferDepth)
				}
			}
		}
	}
}
