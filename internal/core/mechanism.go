package core

import (
	"flov/internal/network"
	"flov/internal/nlog"
	"flov/internal/power"
	"flov/internal/topology"
)

// Mechanism is the FLOV power-gating scheme (restricted or generalized)
// plugged into a network.Network.
type Mechanism struct {
	// OnTransition, when set, observes every router power-state change
	// (event tracing, tests). Must be set before the first cycle.
	OnTransition func(now int64, id int, from, to PowerState) //flovsnap:skip observer hook, not simulation state

	generalized bool
	net         *network.Network //flovsnap:skip wiring installed by Attach
	ledger      *power.Ledger    //flovsnap:skip wiring installed by Attach
	ws          []*flovRouter
}

// NewRFLOV returns the restricted-FLOV mechanism: no two consecutive
// routers in a row/column may be power-gated simultaneously.
func NewRFLOV() *Mechanism { return &Mechanism{} }

// NewGFLOV returns the generalized-FLOV mechanism: arbitrary runs of
// consecutive routers may be power-gated, with handshakes and credits
// relayed across them.
func NewGFLOV() *Mechanism { return &Mechanism{generalized: true} }

// Name implements network.Mechanism.
func (m *Mechanism) Name() string {
	if m.generalized {
		return "gFLOV"
	}
	return "rFLOV"
}

// Generalized reports whether this is gFLOV.
func (m *Mechanism) Generalized() bool { return m.generalized }

// Attach wraps every router with the FLOV architecture.
func (m *Mechanism) Attach(n *network.Network) {
	m.net = n
	m.ledger = n.Ledger
	if m.OnTransition == nil {
		m.OnTransition = func(now int64, id int, from, to PowerState) {
			if n.Trace != nil {
				n.Trace.Addf(now, nlog.KTransition, id, "%v -> %v", from, to)
			}
		}
	}
	m.ws = make([]*flovRouter, n.Cfg.N())
	for id, r := range n.Routers {
		w := newFLOVRouter(id, m, r, n.Mesh, n.Cfg)
		ni := n.NIs[id]
		w.localBusy = ni.Busy
		m.ws[id] = w
	}
}

// OnGatingChange updates per-router core power states; routers react
// autonomously (drain or wake) — there is no central coordination.
func (m *Mechanism) OnGatingChange(now int64, gated []bool) {
	for id, w := range m.ws {
		g := gated[id]
		if g == w.coreGated {
			continue
		}
		w.coreGated = g
		w.lastLocal = now
		if !g {
			// The OS woke the core: the router must power back on.
			w.wantWake = true
		}
	}
}

// TickRouters advances every FLOV router (full pipeline, draining
// pipeline, latch datapath, or wakeup) one cycle.
func (m *Mechanism) TickRouters(now int64) {
	for _, w := range m.ws {
		w.Tick(now)
	}
}

// CanInject allows injection whenever the node's own router pipeline is
// powered. FLOV never stalls the network globally — only a locally
// power-gated or still-waking router makes its NI hold packets back.
func (m *Mechanism) CanInject(node int) bool {
	s := m.ws[node].state
	return s == Active || s == Draining
}

// RouterPowerCounts: Sleep routers burn residual leakage; Active,
// Draining and Wakeup routers burn full leakage.
func (m *Mechanism) RouterPowerCounts() (on, gated int) {
	for _, w := range m.ws {
		if w.state == Sleep {
			gated++
		} else {
			on++
		}
	}
	return on, gated
}

// RouterOn reports whether router id's pipeline is powered.
func (m *Mechanism) RouterOn(id int) bool { return m.ws[id].state != Sleep }

// RouterState exposes the power state (tests, reports).
func (m *Mechanism) RouterState(id int) PowerState { return m.ws[id].state }

// FLOVCapable selects the FLOV leakage model.
func (m *Mechanism) FLOVCapable() bool { return true }

// Quiescent reports whether no handshake currently traps packet flits.
// FLOV transitions never hold packets hostage (latches count as in-flight
// flits), so the network's flit accounting is sufficient.
func (m *Mechanism) Quiescent() bool {
	for _, w := range m.ws {
		if !w.latchesEmpty() {
			return false
		}
	}
	return true
}

// HeldFlits implements network.FlitHolder: flits currently sitting in
// FLOV output latches, which flit-conservation checks must count.
func (m *Mechanism) HeldFlits() int {
	held := 0
	for _, w := range m.ws {
		for _, f := range w.latch {
			if f != nil {
				held++
			}
		}
	}
	return held
}

// LinkCreditSteady implements network.LinkCreditSteady: router id's
// credit state on port d tracks its physical neighbor one-to-one only
// while the router is powered, is not awaiting a credit sync on that
// port, and has not copied up a farther logical neighbor's counters.
func (m *Mechanism) LinkCreditSteady(id int, d topology.Direction) bool {
	w := m.ws[id]
	if w.state != Active && w.state != Draining {
		return false
	}
	if d == topology.Local {
		return true
	}
	return !w.awaitSync[d] && w.physID[d] >= 0 && w.logID[d] == w.physID[d]
}

// SleepStats sums transition counters across routers (tests, reports).
func (m *Mechanism) SleepStats() (sleeps, wakes, aborts int64) {
	for _, w := range m.ws {
		sleeps += w.sleeps
		wakes += w.wakes
		aborts += w.drainAborts
	}
	return
}

// RouterActivity returns flits switched through router id's pipeline
// plus flits that flew over it through FLOV latches (heat maps).
func (m *Mechanism) RouterActivity(id int) int64 {
	return m.net.Routers[id].Traversals + m.ws[id].latchTraversals
}

// GatedRouterIDs lists currently power-gated routers.
func (m *Mechanism) GatedRouterIDs() []int {
	var ids []int
	for id, w := range m.ws {
		if w.state == Sleep {
			ids = append(ids, id)
		}
	}
	return ids
}

var _ network.Mechanism = (*Mechanism)(nil)
