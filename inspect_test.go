package flov_test

import (
	"strings"
	"testing"

	"flov"
)

func buildRan(t *testing.T, mech flov.Mechanism) *flov.Network {
	t.Helper()
	cfg := flov.Default()
	cfg.TotalCycles = 8_000
	cfg.WarmupCycles = 800
	n, err := flov.Build(flov.SyntheticOptions{
		Config: cfg, Mechanism: mech, Pattern: flov.Uniform,
		InjRate: 0.02, GatedFraction: 0.5, GatedSeed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Run()
	return n
}

func TestRenderPowerMapGFLOV(t *testing.T) {
	n := buildRan(t, flov.GFLOV)
	out := flov.RenderPowerMap(n)
	if !strings.Contains(out, ".") {
		t.Fatal("no gated routers rendered at 50% gating")
	}
	if !strings.Contains(out, "A") {
		t.Fatal("no active routers rendered")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 9 { // 8 rows + legend
		t.Fatalf("unexpected shape: %d lines", len(lines))
	}
	// The AON column (right edge) must be all-active.
	for _, l := range lines[:8] {
		cells := strings.Fields(l)
		if cells[len(cells)-1] != "A" {
			t.Fatalf("AON column not active in row %q", l)
		}
	}
}

func TestRenderPowerMapBaseline(t *testing.T) {
	n := buildRan(t, flov.Baseline)
	out := flov.RenderPowerMap(n)
	if strings.Contains(strings.Split(out, "\n")[0], ".") {
		t.Fatal("baseline rendered gated routers")
	}
}

func TestRouterActivityCounts(t *testing.T) {
	n := buildRan(t, flov.GFLOV)
	total := int64(0)
	for id := 0; id < n.Cfg.N(); id++ {
		total += flov.RouterActivity(n, id)
	}
	if total == 0 {
		t.Fatal("no activity recorded")
	}
}

func TestRenderSideBySide(t *testing.T) {
	n := buildRan(t, flov.RP)
	out := flov.RenderSideBySide(n)
	if len(strings.Split(strings.TrimSpace(out), "\n")) < 8 {
		t.Fatalf("short output:\n%s", out)
	}
}

func TestTraceCollection(t *testing.T) {
	cfg := flov.Default()
	cfg.TotalCycles = 6_000
	cfg.WarmupCycles = 600
	n, err := flov.Build(flov.SyntheticOptions{
		Config: cfg, Mechanism: flov.GFLOV, Pattern: flov.Uniform,
		InjRate: 0.02, GatedFraction: 0.5, GatedSeed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Capacity must cover the whole run: early power transitions would
	// otherwise be evicted by the thousands of later delivery events.
	n.EnableTrace(flov.NewTraceLog(50_000))
	n.Run()
	if n.Trace.Total() == 0 {
		t.Fatal("no events recorded")
	}
	sawTransition, sawDelivery := false, false
	for _, e := range n.Trace.Events() {
		s := e.String()
		if strings.Contains(s, "->") && strings.Contains(s, "trans") {
			sawTransition = true
		}
		if strings.Contains(s, "delivered") {
			sawDelivery = true
		}
	}
	if !sawDelivery {
		t.Fatal("no delivery events")
	}
	if !sawTransition {
		t.Fatal("no power-transition events")
	}
}
