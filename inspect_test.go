package flov_test

import (
	"flag"
	"os"
	"strings"
	"testing"

	"flov"
)

// updateGolden regenerates testdata/inspect_golden.txt instead of
// comparing against it.
var updateGolden = flag.Bool("update", false, "rewrite golden files")

func buildRan(t *testing.T, mech flov.Mechanism) *flov.Network {
	t.Helper()
	cfg := flov.Default()
	cfg.TotalCycles = 8_000
	cfg.WarmupCycles = 800
	n, err := flov.Build(flov.SyntheticOptions{
		Config: cfg, Mechanism: mech, Pattern: flov.Uniform,
		InjRate: 0.02, GatedFraction: 0.5, GatedSeed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Run()
	return n
}

func TestRenderPowerMapGFLOV(t *testing.T) {
	n := buildRan(t, flov.GFLOV)
	out := flov.RenderPowerMap(n)
	if !strings.Contains(out, ".") {
		t.Fatal("no gated routers rendered at 50% gating")
	}
	if !strings.Contains(out, "A") {
		t.Fatal("no active routers rendered")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 9 { // 8 rows + legend
		t.Fatalf("unexpected shape: %d lines", len(lines))
	}
	// The AON column (right edge) must be all-active.
	for _, l := range lines[:8] {
		cells := strings.Fields(l)
		if cells[len(cells)-1] != "A" {
			t.Fatalf("AON column not active in row %q", l)
		}
	}
}

func TestRenderPowerMapBaseline(t *testing.T) {
	n := buildRan(t, flov.Baseline)
	out := flov.RenderPowerMap(n)
	if strings.Contains(strings.Split(out, "\n")[0], ".") {
		t.Fatal("baseline rendered gated routers")
	}
}

func TestRouterActivityCounts(t *testing.T) {
	n := buildRan(t, flov.GFLOV)
	total := int64(0)
	for id := 0; id < n.Cfg.N(); id++ {
		total += flov.RouterActivity(n, id)
	}
	if total == 0 {
		t.Fatal("no activity recorded")
	}
}

func TestRenderSideBySide(t *testing.T) {
	n := buildRan(t, flov.RP)
	out := flov.RenderSideBySide(n)
	if len(strings.Split(strings.TrimSpace(out), "\n")) < 8 {
		t.Fatalf("short output:\n%s", out)
	}
}

func TestRenderHeatMap(t *testing.T) {
	n := buildRan(t, flov.GFLOV)
	out := flov.RenderHeatMap(n)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 8 {
		t.Fatalf("unexpected shape: %d lines\n%s", len(lines), out)
	}
	sawHot := false
	for _, l := range lines {
		for _, cell := range strings.Fields(l) {
			isDigit := len(cell) == 1 && cell[0] >= '0' && cell[0] <= '9'
			if !isDigit && cell != "." {
				t.Fatalf("heat cell %q outside 0-9/. in row %q", cell, l)
			}
			if isDigit && cell[0] > '0' {
				sawHot = true
			}
		}
	}
	if !sawHot {
		t.Fatal("heat map shows no activity after a loaded run")
	}
}

// TestPowerStateGlyphTransitions steps a network across a gating
// reconfiguration so the intermediate Draining and Wakeup states are
// actually observable, and checks every glyph stays in the legend
// alphabet.
func TestPowerStateGlyphTransitions(t *testing.T) {
	cfg := flov.Default()
	mesh, err := flov.NewMesh(cfg.Width, cfg.Height)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := flov.NewSchedule(cfg.N(), []flov.GatingEvent{
		{At: 0, Gated: flov.RandomGatedMask(mesh, 20, nil, 1)},
		{At: 2_000, Gated: flov.RandomGatedMask(mesh, 20, nil, 2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := flov.Build(flov.SyntheticOptions{
		Config: cfg, Mechanism: flov.GFLOV, Pattern: flov.Uniform,
		InjRate: 0.02, Schedule: sched,
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[rune]bool)
	for cycle := 0; cycle < 4_000; cycle++ {
		n.Step()
		for id := 0; id < cfg.N(); id++ {
			seen[flov.PowerStateGlyph(n, id)] = true
		}
	}
	for g := range seen {
		if !strings.ContainsRune("ADW.", g) {
			t.Errorf("glyph %q outside the legend alphabet", g)
		}
	}
	for _, g := range "ADW." {
		if !seen[g] {
			t.Errorf("glyph %q never observed across the reconfiguration", g)
		}
	}
}

// TestRenderGolden pins the exact rendered output of a fixed
// deterministic run against testdata/inspect_golden.txt. The simulator
// guarantees bit-identical results for identical options, so any drift
// here is either a rendering change (regenerate with -update) or a
// broken determinism contract (fix the simulator).
func TestRenderGolden(t *testing.T) {
	n := buildRan(t, flov.GFLOV)
	got := flov.RenderSideBySide(n)
	const path = "testdata/inspect_golden.txt"
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("rendered output drifted from golden (go test -run TestRenderGolden -update to regenerate):\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestTraceCollection(t *testing.T) {
	cfg := flov.Default()
	cfg.TotalCycles = 6_000
	cfg.WarmupCycles = 600
	n, err := flov.Build(flov.SyntheticOptions{
		Config: cfg, Mechanism: flov.GFLOV, Pattern: flov.Uniform,
		InjRate: 0.02, GatedFraction: 0.5, GatedSeed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Capacity must cover the whole run: early power transitions would
	// otherwise be evicted by the thousands of later delivery events.
	n.EnableTrace(flov.NewTraceLog(50_000))
	n.Run()
	if n.Trace.Total() == 0 {
		t.Fatal("no events recorded")
	}
	sawTransition, sawDelivery := false, false
	for _, e := range n.Trace.Events() {
		s := e.String()
		if strings.Contains(s, "->") && strings.Contains(s, "trans") {
			sawTransition = true
		}
		if strings.Contains(s, "delivered") {
			sawDelivery = true
		}
	}
	if !sawDelivery {
		t.Fatal("no delivery events")
	}
	if !sawTransition {
		t.Fatal("no power-transition events")
	}
}
