package flov

import (
	"flov/internal/core"
	"flov/internal/render"
)

// PowerStateGlyph returns a one-rune summary of router id's power state:
// 'A' active, 'D' draining, 'W' waking, '.' power-gated. Mechanisms
// without intermediate states (Baseline, RP) report only 'A' and '.'.
func PowerStateGlyph(n *Network, id int) rune {
	if m, ok := n.Mech.(*core.Mechanism); ok {
		switch m.RouterState(id) {
		case core.Active:
			return 'A'
		case core.Draining:
			return 'D'
		case core.Wakeup:
			return 'W'
		default:
			return '.'
		}
	}
	if n.Mech.RouterOn(id) {
		return 'A'
	}
	return '.'
}

// RenderPowerMap draws the mesh's current power states as an ASCII grid
// (north row on top) plus a legend line.
func RenderPowerMap(n *Network) string {
	return render.PowerMap(n.Mesh, func(id int) rune { return PowerStateGlyph(n, id) }) +
		render.Legend() + "\n"
}

// RouterActivity returns the number of flits that crossed router id —
// switched through its pipeline plus (for FLOV) flown over its latches.
func RouterActivity(n *Network, id int) int64 {
	if m, ok := n.Mech.(*core.Mechanism); ok {
		return m.RouterActivity(id)
	}
	return n.Routers[id].Traversals
}

// RenderHeatMap draws per-router flit activity on a 0-9 scale.
func RenderHeatMap(n *Network) string {
	return render.HeatMap(n.Mesh, func(id int) float64 { return float64(RouterActivity(n, id)) })
}

// RenderSideBySide prints the power map next to the activity heat map.
func RenderSideBySide(n *Network) string {
	pm := render.PowerMap(n.Mesh, func(id int) rune { return PowerStateGlyph(n, id) })
	hm := render.HeatMap(n.Mesh, func(id int) float64 { return float64(RouterActivity(n, id)) })
	return render.SideBySide(pm, hm, "    ") + render.Legend() + "   right: flit activity 0-9\n"
}
