package flov

import (
	"fmt"
	"io"

	"flov/internal/network"
	"flov/internal/snapshot"
	"flov/internal/trace"
)

// Driver is the closed-loop (PARSEC-substitute) benchmark driver, for
// callers that need cycle-level control over full-system runs — in
// particular checkpointed execution via RunUntil.
type Driver = trace.Driver

// SnapshotSchemaVersion names the checkpoint state schema this build
// reads and writes. It participates in sweep cache keys so warm-start
// blobs from an incompatible build are never reused.
const SnapshotSchemaVersion = snapshot.SchemaVersion

// SaveSnapshot writes a deterministic checkpoint of a live simulation to
// w. Pass the driver for closed-loop runs, nil for synthetic ones.
func SaveSnapshot(w io.Writer, n *Network, d *Driver) error {
	return snapshot.Save(w, n, d)
}

// RestoreSnapshot applies a checkpoint to a freshly built simulation
// with the same configuration, mechanism and workload. On error the
// network must be rebuilt before use.
func RestoreSnapshot(r io.Reader, n *Network, d *Driver) error {
	return snapshot.Restore(r, n, d)
}

// RestoreWarmSnapshot applies a post-warmup checkpoint onto a network
// whose config may differ in TotalCycles/DrainCycles only (warm-start
// sweep forking).
func RestoreWarmSnapshot(r io.Reader, n *Network) error {
	return snapshot.RestoreWarm(r, n)
}

// SnapshotDiff compares two live simulations field by field and returns
// the first mismatch path, or "" when identical.
func SnapshotDiff(na, nb *Network, da, db *Driver) (string, error) {
	return snapshot.Diff(na, nb, da, db)
}

// BuildProfile assembles (but does not run) a closed-loop benchmark run,
// for callers that need checkpointed execution: advance with
// Driver.RunUntil, snapshot with SaveSnapshot, finish with
// Driver.Outcome.
func BuildProfile(prof Profile, m Mechanism, seed uint64) (*Network, *Driver, error) {
	cfg := FullSystem()
	cfg.WarmupCycles = 0
	cfg.TotalCycles = 1 << 40
	mech, err := NewMechanism(m)
	if err != nil {
		return nil, nil, err
	}
	n, err := network.New(cfg, mech, nil, nil, 0)
	if err != nil {
		return nil, nil, err
	}
	return n, trace.NewDriver(n, prof, seed), nil
}

// BuildPARSEC is BuildProfile by benchmark name.
func BuildPARSEC(benchmark string, m Mechanism, seed uint64) (*Network, *Driver, error) {
	prof, ok := trace.ProfileByName(benchmark)
	if !ok {
		return nil, nil, fmt.Errorf("flov: unknown benchmark %q", benchmark)
	}
	return BuildProfile(prof, m, seed)
}
