module flov

go 1.22
