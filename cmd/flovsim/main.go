// Command flovsim runs a single NoC simulation and prints its results:
// either a synthetic workload (BookSim-style) or a PARSEC-substitute
// full-system benchmark.
//
// Examples:
//
//	flovsim -mech gflov -pattern uniform -rate 0.02 -gated 0.5
//	flovsim -mech rp -pattern tornado -rate 0.08 -gated 0.3 -cycles 200000
//	flovsim -mech gflov -bench canneal
//	flovsim -table1
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"flov"
)

func main() {
	mechName := flag.String("mech", "gflov", "mechanism: baseline|rp|rflov|gflov")
	patName := flag.String("pattern", "uniform", "traffic: uniform|tornado|transpose|bitcomp|neighbor|hotspot")
	rate := flag.Float64("rate", 0.02, "injection rate (flits/cycle/node)")
	gated := flag.Float64("gated", 0.5, "fraction of cores power-gated")
	cycles := flag.Int64("cycles", 100_000, "total simulated cycles")
	warmup := flag.Int64("warmup", 10_000, "warmup cycles before measurement")
	width := flag.Int("width", 8, "mesh width")
	height := flag.Int("height", 8, "mesh height")
	seed := flag.Uint64("seed", 1, "simulation seed")
	bench := flag.String("bench", "", "run a PARSEC-substitute benchmark instead (e.g. canneal)")
	table1 := flag.Bool("table1", false, "print the Table I configuration and exit")
	jsonOut := flag.Bool("json", false, "emit the result as JSON (same row schema as flovsweep)")
	showMap := flag.Bool("map", false, "print the final power-state and activity maps")
	traceN := flag.Int("trace", 0, "record and print the last N simulator events")
	flag.Parse()

	cfg := flov.Default()
	cfg.Width, cfg.Height = *width, *height
	cfg.TotalCycles, cfg.WarmupCycles = *cycles, *warmup
	cfg.Seed = *seed

	if *table1 {
		fmt.Print(cfg.TableI())
		return
	}

	mech, err := flov.ParseMechanism(*mechName)
	if err != nil {
		fatal(err)
	}

	if *bench != "" {
		start := time.Now()
		out, err := flov.RunPARSEC(*bench, mech, *seed, 0)
		if err != nil {
			fatal(err)
		}
		if *jsonOut {
			job, err := flov.PARSECJob(*bench, mech, *seed, 0)
			if err != nil {
				fatal(err)
			}
			printJSON(flov.SweepResult{Job: job, Out: out, Wall: time.Since(start)})
			return
		}
		fmt.Println(out)
		return
	}

	pat, err := flov.ParsePattern(*patName)
	if err != nil {
		fatal(err)
	}
	opts := flov.SyntheticOptions{
		Config:        cfg,
		Mechanism:     mech,
		Pattern:       pat,
		InjRate:       *rate,
		GatedFraction: *gated,
		GatedSeed:     *seed,
	}
	n, err := flov.Build(opts)
	if err != nil {
		fatal(err)
	}
	if *traceN > 0 {
		n.EnableTrace(flov.NewTraceLog(*traceN))
	}
	start := time.Now()
	res := n.Run()
	if *jsonOut {
		job, err := flov.SyntheticJob(opts)
		if err != nil {
			fatal(err)
		}
		printJSON(flov.SweepResult{Job: job, Res: res, Wall: time.Since(start)})
		if res.Undelivered != 0 {
			os.Exit(1)
		}
		return
	}
	fmt.Println(res)
	b := res.Breakdown
	fmt.Printf("latency breakdown: router=%.1f link=%.1f serialization=%.1f flov=%.1f contention=%.1f\n",
		b.Router, b.Link, b.Serialization, b.FLOV, b.Contention)
	fmt.Printf("power: static=%.1fmW dynamic=%.1fmW total=%.1fmW (gated routers: %d/%d)\n",
		res.StaticPowerW*1e3, res.DynamicPowerW*1e3, res.TotalPowerW*1e3,
		res.GatedRouters, res.GatedRouters+res.PoweredRouters)
	fmt.Printf("latency tail: p99<=%d max=%d cycles; escape packets: %.2f%%\n",
		res.P99Latency, res.MaxLatency, res.EscapeFrac*100)
	if *showMap {
		fmt.Println("\nfinal network state:")
		fmt.Print(flov.RenderSideBySide(n))
	}
	if *traceN > 0 {
		fmt.Printf("\nlast %d of %d recorded events:\n", len(n.Trace.Tail(*traceN)), n.Trace.Total())
		for _, e := range n.Trace.Tail(*traceN) {
			fmt.Println(e)
		}
	}
	if res.Undelivered != 0 {
		fmt.Printf("WARNING: %d flits undelivered\n", res.Undelivered)
		os.Exit(1)
	}
}

// printJSON writes one sweep-schema row to stdout.
func printJSON(r flov.SweepResult) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", " ")
	if err := enc.Encode(r); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flovsim:", err)
	os.Exit(1)
}
