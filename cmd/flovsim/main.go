// Command flovsim runs a single NoC simulation and prints its results:
// either a synthetic workload (BookSim-style) or a PARSEC-substitute
// full-system benchmark.
//
// Examples:
//
//	flovsim -mech gflov -pattern uniform -rate 0.02 -gated 0.5
//	flovsim -mech rp -pattern tornado -rate 0.08 -gated 0.3 -cycles 200000
//	flovsim -mech gflov -bench canneal
//	flovsim -table1
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"flov"
)

func main() {
	mechName := flag.String("mech", "gflov", "mechanism: baseline|rp|rflov|gflov")
	patName := flag.String("pattern", "uniform", "traffic: uniform|tornado|transpose|bitcomp|neighbor|hotspot")
	rate := flag.Float64("rate", 0.02, "injection rate (flits/cycle/node)")
	gated := flag.Float64("gated", 0.5, "fraction of cores power-gated")
	cycles := flag.Int64("cycles", 100_000, "total simulated cycles")
	warmup := flag.Int64("warmup", 10_000, "warmup cycles before measurement")
	width := flag.Int("width", 8, "mesh width")
	height := flag.Int("height", 8, "mesh height")
	seed := flag.Uint64("seed", 1, "simulation seed")
	bench := flag.String("bench", "", "run a PARSEC-substitute benchmark instead (e.g. canneal)")
	table1 := flag.Bool("table1", false, "print the Table I configuration and exit")
	jsonOut := flag.Bool("json", false, "emit the result as JSON (same row schema as flovsweep)")
	showMap := flag.Bool("map", false, "print the final power-state and activity maps")
	traceN := flag.Int("trace", 0, "record and print the last N simulator events")
	ckptFile := flag.String("checkpoint", "", "write a checkpoint to FILE every -checkpoint-every cycles (atomic overwrite)")
	ckptEvery := flag.Int64("checkpoint-every", 0, "checkpoint cadence in cycles (requires -checkpoint)")
	restoreFile := flag.String("restore", "", "restore simulation state from a checkpoint FILE before running")
	faultsFile := flag.String("faults", "", "attach the fault-injection subsystem from a fault-spec JSON FILE (synthetic runs only)")
	flag.Parse()

	if *ckptEvery > 0 && *ckptFile == "" {
		fatal(fmt.Errorf("-checkpoint-every requires -checkpoint"))
	}
	if *ckptFile != "" && *ckptEvery <= 0 {
		fatal(fmt.Errorf("-checkpoint requires a positive -checkpoint-every cadence"))
	}

	cfg := flov.Default()
	cfg.Width, cfg.Height = *width, *height
	cfg.TotalCycles, cfg.WarmupCycles = *cycles, *warmup
	cfg.Seed = *seed

	if *table1 {
		fmt.Print(cfg.TableI())
		return
	}

	mech, err := flov.ParseMechanism(*mechName)
	if err != nil {
		fatal(err)
	}

	var faults *flov.FaultSpec
	if *faultsFile != "" {
		data, err := os.ReadFile(*faultsFile)
		if err != nil {
			fatal(err)
		}
		spec, err := flov.ParseFaultSpec(data)
		if err != nil {
			fatal(err)
		}
		faults = &spec
	}

	if *bench != "" {
		if faults != nil {
			fatal(fmt.Errorf("-faults is only supported for synthetic runs"))
		}
		start := time.Now()
		out, err := runBench(*bench, mech, *seed, *restoreFile, *ckptFile, *ckptEvery)
		if err != nil {
			fatal(err)
		}
		if *jsonOut {
			job, err := flov.PARSECJob(*bench, mech, *seed, 0)
			if err != nil {
				fatal(err)
			}
			printJSON(flov.SweepResult{Job: job, Out: out, Wall: time.Since(start)})
			return
		}
		fmt.Println(out)
		return
	}

	pat, err := flov.ParsePattern(*patName)
	if err != nil {
		fatal(err)
	}
	opts := flov.SyntheticOptions{
		Config:        cfg,
		Mechanism:     mech,
		Pattern:       pat,
		InjRate:       *rate,
		GatedFraction: *gated,
		GatedSeed:     *seed,
		Faults:        faults,
	}
	n, err := flov.Build(opts)
	if err != nil {
		fatal(err)
	}
	if *traceN > 0 {
		n.EnableTrace(flov.NewTraceLog(*traceN))
	}
	if *restoreFile != "" {
		if err := restoreFrom(*restoreFile, n, nil); err != nil {
			fatal(err)
		}
	}
	start := time.Now()
	if *ckptFile != "" {
		// Advance the measurement window in cadence-sized increments,
		// persisting a checkpoint after each; Run() then finishes whatever
		// remains (a no-op advance) plus the drain phase.
		for n.Now() < cfg.TotalCycles {
			next := n.Now() + *ckptEvery
			if next > cfg.TotalCycles {
				next = cfg.TotalCycles
			}
			n.RunTo(next)
			if err := saveCheckpoint(*ckptFile, n, nil); err != nil {
				fatal(err)
			}
		}
	}
	res := n.Run()
	if *jsonOut {
		job, err := flov.SyntheticJob(opts)
		if err != nil {
			fatal(err)
		}
		printJSON(flov.SweepResult{Job: job, Res: res, Wall: time.Since(start)})
		if res.Undelivered != 0 {
			os.Exit(1)
		}
		return
	}
	fmt.Println(res)
	b := res.Breakdown
	fmt.Printf("latency breakdown: router=%.1f link=%.1f serialization=%.1f flov=%.1f contention=%.1f\n",
		b.Router, b.Link, b.Serialization, b.FLOV, b.Contention)
	fmt.Printf("power: static=%.1fmW dynamic=%.1fmW total=%.1fmW (gated routers: %d/%d)\n",
		res.StaticPowerW*1e3, res.DynamicPowerW*1e3, res.TotalPowerW*1e3,
		res.GatedRouters, res.GatedRouters+res.PoweredRouters)
	fmt.Printf("latency tail: p99<=%d max=%d cycles; escape packets: %.2f%%\n",
		res.P99Latency, res.MaxLatency, res.EscapeFrac*100)
	if *showMap {
		fmt.Println("\nfinal network state:")
		fmt.Print(flov.RenderSideBySide(n))
	}
	if *traceN > 0 {
		fmt.Printf("\nlast %d of %d recorded events:\n", len(n.Trace.Tail(*traceN)), n.Trace.Total())
		for _, e := range n.Trace.Tail(*traceN) {
			fmt.Println(e)
		}
	}
	if res.Undelivered != 0 {
		fmt.Printf("WARNING: %d flits undelivered\n", res.Undelivered)
		os.Exit(1)
	}
}

// runBench executes a closed-loop benchmark, optionally restoring from
// and/or writing checkpoints. Without either option it defers to the
// plain facade entry point.
func runBench(bench string, mech flov.Mechanism, seed uint64, restoreFile, ckptFile string, ckptEvery int64) (flov.Outcome, error) {
	if restoreFile == "" && ckptFile == "" {
		return flov.RunPARSEC(bench, mech, seed, 0)
	}
	n, d, err := flov.BuildPARSEC(bench, mech, seed)
	if err != nil {
		return flov.Outcome{}, err
	}
	if restoreFile != "" {
		if err := restoreFrom(restoreFile, n, d); err != nil {
			return flov.Outcome{}, err
		}
	}
	const maxCycles = 20_000_000
	if ckptFile != "" {
		for n.Now() < maxCycles && !d.Finished() {
			next := n.Now() + ckptEvery
			if next > maxCycles {
				next = maxCycles
			}
			d.RunUntil(next)
			if err := saveCheckpoint(ckptFile, n, d); err != nil {
				return flov.Outcome{}, err
			}
		}
	} else {
		d.RunUntil(maxCycles)
	}
	out := d.Outcome()
	if !out.Completed {
		return out, fmt.Errorf("benchmark %s/%v did not complete within %d cycles", bench, mech, int64(maxCycles))
	}
	return out, nil
}

// restoreFrom applies a checkpoint file to a freshly built simulation.
func restoreFrom(path string, n *flov.Network, d *flov.Driver) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer func() { _ = f.Close() }()
	if err := flov.RestoreSnapshot(f, n, d); err != nil {
		return fmt.Errorf("restoring %s: %w", path, err)
	}
	fmt.Fprintf(os.Stderr, "flovsim: restored from %s at cycle %d\n", path, n.Now())
	return nil
}

// saveCheckpoint writes a snapshot atomically: temp file in the target
// directory, fsync-free rename, so a crash mid-write never clobbers the
// previous good checkpoint.
func saveCheckpoint(path string, n *flov.Network, d *flov.Driver) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".flovsnap-*")
	if err != nil {
		return err
	}
	// Best effort: after a successful rename there is nothing to remove.
	defer func() { _ = os.Remove(tmp.Name()) }()
	if err := flov.SaveSnapshot(tmp, n, d); err != nil {
		_ = tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// printJSON writes one sweep-schema row to stdout.
func printJSON(r flov.SweepResult) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", " ")
	if err := enc.Encode(r); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flovsim:", err)
	os.Exit(1)
}
