// Command flovrel is the statistical reliability verification harness:
// it sweeps gating mechanisms against fault-injection scenarios, running
// N seeded trials per cell through the sweep engine, and prints a
// verdict table with confidence intervals on delivery probability.
//
// The matrix is mechanisms x fault scenarios; scenarios are the cross
// product of -link-rate and -router-rate lists plus any -faults files:
//
//	flovrel -mech baseline,gflov -link-rate 0,1e-4 -trials 16
//	flovrel -mech all -link-rate 1e-4 -router-rate 1e-5 -trials 32 -exact
//	flovrel -mech gflov -faults kill-column.json -trials 8 -replay-dir out/
//
// Exit status is nonzero when any cell is VIOLATED; with -replay-dir the
// failing trials are replayed and their seed + snapshot + fault spec are
// written there for reproduction under flovsim (see EXPERIMENTS.md).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"flov"
	"flov/internal/config"
	"flov/internal/fault"
	"flov/internal/relcheck"
	"flov/internal/sweep"
)

func main() {
	mechs := flag.String("mech", "baseline,gflov", "comma-separated mechanisms, or 'all'")
	linkRates := flag.String("link-rate", "0,1e-4", "comma-separated per-link per-cycle transient fault rates")
	routerRates := flag.String("router-rate", "0", "comma-separated per-router per-cycle transient fault rates")
	transient := flag.Int64("transient-cycles", 0, "transient fault heal delay (0 = default)")
	faultFiles := flag.String("faults", "", "comma-separated fault-spec JSON files appended as extra scenarios")
	pattern := flag.String("pattern", "uniform", "synthetic traffic pattern")
	rate := flag.Float64("rate", 0.02, "injection rate (flits/cycle/node)")
	gated := flag.Float64("gated", 0.5, "fraction of cores power-gated")
	width := flag.Int("width", 8, "mesh width")
	height := flag.Int("height", 8, "mesh height")
	cycles := flag.Int64("cycles", 20_000, "measured cycles per trial (trials run without warmup)")
	trials := flag.Int("trials", 16, "seeded trials per (mechanism, scenario) cell")
	seedBase := flag.Uint64("seed-base", 1, "traffic seed of trial 0 (trial t uses seed-base+t)")
	confidence := flag.Float64("confidence", 0.95, "confidence level for the delivery-probability interval")
	exact := flag.Bool("exact", false, "use the exact Clopper-Pearson interval instead of Wilson")
	workers := flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	cacheDir := flag.String("cache-dir", "", "sweep result cache directory ('' = uncached)")
	replayDir := flag.String("replay-dir", "", "write seed+snapshot replay bundles for VIOLATED cells here")
	jsonOut := flag.Bool("json", false, "emit the full report as JSON instead of the table")
	quiet := flag.Bool("quiet", false, "suppress the per-trial progress ticker")
	flag.Parse()

	spec, err := buildSpec(*mechs, *linkRates, *routerRates, *transient, *faultFiles,
		*pattern, *rate, *gated, *width, *height, *cycles, *trials, *seedBase, *confidence, *exact)
	if err != nil {
		fatal(err)
	}

	opts := relcheck.Options{Workers: *workers}
	if *cacheDir != "" {
		c, err := sweep.NewCache(*cacheDir)
		if err != nil {
			fatal(err)
		}
		opts.Cache = c
	}
	if !*quiet {
		opts.Progress = sweep.NewReporter(os.Stderr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rep, err := relcheck.Run(ctx, spec, opts)
	if err != nil {
		fatal(err)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
	} else {
		fmt.Print(rep.Table())
	}

	if rep.Violated() && *replayDir != "" {
		arts, err := relcheck.WriteArtifacts(*replayDir, spec, rep)
		if err != nil {
			fatal(err)
		}
		for _, a := range arts {
			fmt.Fprintf(os.Stderr, "flovrel: replay bundle for %s seed %d: %s\n", a.Mechanism, a.Seed, a.Command)
		}
	}
	if rep.Violated() {
		os.Exit(1)
	}
}

// buildSpec assembles the verification matrix from the flag values.
func buildSpec(mechList, linkList, routerList string, transient int64, faultFiles,
	pattern string, rate, gated float64, width, height int, cycles int64,
	trials int, seedBase uint64, confidence float64, exact bool) (relcheck.Spec, error) {
	var s relcheck.Spec

	cfg := flov.Default()
	cfg.Width, cfg.Height = width, height
	cfg.TotalCycles, cfg.WarmupCycles = cycles, 0
	s.Config = cfg

	pat, err := flov.ParsePattern(pattern)
	if err != nil {
		return s, err
	}
	s.Pattern = pat
	s.Rate = rate
	s.Frac = gated

	if mechList == "all" {
		s.Mechanisms = flov.AllMechanisms()
	} else {
		for _, name := range strings.Split(mechList, ",") {
			m, err := config.ParseMechanism(strings.TrimSpace(name))
			if err != nil {
				return s, err
			}
			s.Mechanisms = append(s.Mechanisms, m)
		}
	}

	lr, err := parseFloats(linkList)
	if err != nil {
		return s, fmt.Errorf("-link-rate: %w", err)
	}
	rr, err := parseFloats(routerList)
	if err != nil {
		return s, fmt.Errorf("-router-rate: %w", err)
	}
	for _, l := range lr {
		for _, r := range rr {
			s.Faults = append(s.Faults, fault.Spec{
				LinkRate:        l,
				RouterRate:      r,
				TransientCycles: transient,
			})
		}
	}
	if faultFiles != "" {
		for _, path := range strings.Split(faultFiles, ",") {
			data, err := os.ReadFile(strings.TrimSpace(path))
			if err != nil {
				return s, err
			}
			fs, err := fault.ParseSpec(data)
			if err != nil {
				return s, fmt.Errorf("%s: %w", path, err)
			}
			s.Faults = append(s.Faults, fs)
		}
	}

	s.Trials = trials
	s.SeedBase = seedBase
	s.Confidence = confidence
	s.Exact = exact
	return s, nil
}

// parseFloats parses a comma-separated float list.
func parseFloats(list string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(list, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flovrel:", err)
	os.Exit(1)
}
