// Command flovopt searches the FLOV design space for Pareto-optimal
// configurations: a deterministic multi-objective optimizer over mesh
// size, VC/buffer counts, gating mechanism, wakeup latency, gated
// fraction and workload, scored on energy per flit, latency and
// throughput. Every candidate runs through the sweep engine, so
// evaluations hit the shared on-disk result cache, and the whole search
// is a pure function of the spec: same spec + seed = byte-identical
// front, across processes.
//
//	flovopt -mech all -gated 0,0.25,0.5 -rate 0.02,0.08        # grid flags
//	flovopt -spec search.json -format json -out front.json      # JSON spec
//	flovopt -strategy anneal -generations 12 -population 24
//	flovopt -run-dir runs/a -resume                             # replay durable rows
//	flovopt -plot                                               # ASCII front scatter
//
// Progress goes to stderr; the front goes to -out (default stdout) as
// CSV or JSON.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"flov/internal/opt"
	"flov/internal/sweep"
)

func main() {
	objectives := flag.String("objectives", "energy_per_flit,mean_latency", "comma-separated objectives (energy_per_flit, mean_latency, p99_latency, throughput)")
	strategy := flag.String("strategy", "nsga2", "search strategy: nsga2|anneal|random")
	generations := flag.Int("generations", 8, "ask/evaluate/tell rounds")
	population := flag.Int("population", 16, "candidates per generation")
	seed := flag.Uint64("seed", 1, "search + simulation + gated-mask seed")
	widths := flag.String("widths", "", "comma-separated mesh widths (default 8)")
	heights := flag.String("heights", "", "comma-separated mesh heights (default 8)")
	vcs := flag.String("vcs", "", "comma-separated VCs per vnet (default 3)")
	buffers := flag.String("buffers", "", "comma-separated buffer depths (default 6)")
	mechs := flag.String("mech", "all", "comma-separated mechanisms, or 'all'")
	wakeups := flag.String("wakeup", "", "comma-separated wakeup latencies (default 10)")
	fracs := flag.String("gated", "", "comma-separated gated fractions (default 0,0.25,0.5)")
	rates := flag.String("rate", "", "comma-separated injection rates (default 0.02,0.06)")
	patterns := flag.String("pattern", "", "comma-separated traffic patterns (default uniform)")
	cycles := flag.Int64("cycles", 0, "total simulated cycles per candidate (0 = default)")
	warmup := flag.Int64("warmup", 0, "warmup cycles per candidate (0 = default)")
	specPath := flag.String("spec", "", "JSON spec file (overrides the grid flags)")
	workers := flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	cacheDir := flag.String("cache-dir", "", "result cache directory (default $FLOV_SWEEP_CACHE or the user cache dir)")
	noCache := flag.Bool("no-cache", false, "disable the result cache")
	runDir := flag.String("run-dir", "", "run directory: finished evaluations append to <dir>/evals.ndjson, surviving interruption")
	resume := flag.Bool("resume", false, "with -run-dir: replay evaluations already durable from an interrupted run")
	format := flag.String("format", "csv", "output format: csv|json")
	out := flag.String("out", "", "output file (default stdout)")
	plot := flag.Bool("plot", false, "render the front as an ASCII scatter on stderr")
	quiet := flag.Bool("quiet", false, "suppress the per-generation progress ticker")
	flag.Parse()

	if *resume && *runDir == "" {
		fatal(fmt.Errorf("-resume requires -run-dir"))
	}

	spec, err := buildSpec(*specPath, *objectives, *strategy, *generations, *population, *seed,
		*widths, *heights, *vcs, *buffers, *mechs, *wakeups, *fracs, *rates, *patterns,
		*cycles, *warmup)
	if err != nil {
		fatal(err)
	}

	var cache *sweep.Cache
	if !*noCache {
		dir := *cacheDir
		if dir == "" {
			if dir, err = sweep.DefaultDir(); err != nil {
				fatal(err)
			}
		}
		if cache, err = sweep.NewCache(dir); err != nil {
			fatal(err)
		}
	}

	opts := opt.Options{
		Workers: *workers,
		Cache:   cache,
		RunDir:  *runDir,
		Resume:  *resume,
	}
	if !*quiet {
		opts.Progress = func(ev opt.Event) {
			fmt.Fprintf(os.Stderr, "gen %d/%d: %d asked, %d simulated (%d cached), %d reused, front=%d\n",
				ev.Gen+1, ev.Generations, ev.Asked, ev.Simulated, ev.CacheHits, ev.Reused, ev.Front)
		}
	}

	// SIGINT stops scheduling; the partial front still prints below.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	outcome, runErr := opt.Run(ctx, spec, opts)
	wall := time.Since(start)

	// A spec/setup error produces no outcome worth printing; only an
	// interrupted search still writes its partial front below.
	if runErr != nil && ctx.Err() == nil {
		fatal(runErr)
	}

	w := os.Stdout
	var outFile *os.File
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		outFile = f
		w = f
	}
	switch *format {
	case "csv":
		err = outcome.FrontCSV(w)
	case "json":
		err = outcome.FrontJSON(w)
	default:
		err = fmt.Errorf("unknown format %q (want csv or json)", *format)
	}
	if outFile != nil {
		if cerr := outFile.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fatal(err)
	}

	if *plot && len(outcome.Front) > 0 {
		fmt.Fprint(os.Stderr, outcome.FrontPlot(60, 16))
	}
	fmt.Fprintf(os.Stderr, "%s/%s: %d generations, %d asked, %d simulated (%d cached, %d reused) over a %d-point space in %v; front=%d\n",
		outcome.Strategy, strings.Join(names(outcome.Objectives), "+"),
		outcome.Generations, outcome.Asked, outcome.Simulated, outcome.CacheHits,
		outcome.Reused, outcome.SpaceSize, wall.Round(time.Millisecond), len(outcome.Front))
	if runErr != nil {
		fatal(runErr)
	}
}

func names(objs []opt.Objective) []string {
	out := make([]string, len(objs))
	for i, o := range objs {
		out[i] = o.String()
	}
	return out
}

// buildSpec loads the spec file or folds the grid flags into one.
func buildSpec(path, objectives, strategy string, generations, population int, seed uint64,
	widths, heights, vcs, buffers, mechs, wakeups, fracs, rates, patterns string,
	cycles, warmup int64) (opt.Spec, error) {
	if path != "" {
		return opt.LoadSpec(path)
	}
	widthList, err := parseInts(widths)
	if err != nil {
		return opt.Spec{}, fmt.Errorf("-widths: %w", err)
	}
	heightList, err := parseInts(heights)
	if err != nil {
		return opt.Spec{}, fmt.Errorf("-heights: %w", err)
	}
	vcList, err := parseInts(vcs)
	if err != nil {
		return opt.Spec{}, fmt.Errorf("-vcs: %w", err)
	}
	bufList, err := parseInts(buffers)
	if err != nil {
		return opt.Spec{}, fmt.Errorf("-buffers: %w", err)
	}
	wakeList, err := parseInts(wakeups)
	if err != nil {
		return opt.Spec{}, fmt.Errorf("-wakeup: %w", err)
	}
	fracList, err := parseFloats(fracs)
	if err != nil {
		return opt.Spec{}, fmt.Errorf("-gated: %w", err)
	}
	rateList, err := parseFloats(rates)
	if err != nil {
		return opt.Spec{}, fmt.Errorf("-rate: %w", err)
	}
	return opt.Spec{
		Space: opt.Space{
			Widths:     widthList,
			Heights:    heightList,
			VCs:        vcList,
			Buffers:    bufList,
			Mechanisms: splitList(mechs),
			Wakeups:    wakeList,
			GatedFracs: fracList,
			Rates:      rateList,
			Patterns:   splitList(patterns),
		},
		Objectives:  splitList(objectives),
		Strategy:    strategy,
		Generations: generations,
		Population:  population,
		Seed:        seed,
		Cycles:      cycles,
		Warmup:      warmup,
	}, nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range splitList(s) {
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range splitList(s) {
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flovopt:", err)
	os.Exit(1)
}
