// Command flovd is the simulation-serving daemon: a long-lived HTTP
// service over the sweep engine, for workloads that issue many small
// simulation requests programmatically (design-space exploration,
// dashboards) and want a shared result cache instead of per-process
// cold starts.
//
//	flovd -addr :8080                      # serve with the default cache
//	flovsweep -server http://host:8080 ... # delegate a sweep to it
//
// API: POST /v1/sweeps (async submit), POST /v1/sweeps/run (NDJSON
// stream), GET /v1/sweeps/{id}[/stream|/results], /metrics,
// /debug/events, /healthz. Admission is bounded: when -queue jobs are
// waiting, submissions get 429 instead of unbounded buffering. SIGTERM
// drains gracefully: stop admitting, finish (or after -drain-grace,
// cancel) in-flight jobs, then exit.
//
// Cluster modes (see internal/cluster): any number of processes share a
// persistent job store on one directory.
//
//	flovd -frontend -store /srv/flov -addr :8080   # stateless front door
//	flovd -worker   -store /srv/flov \
//	      -cache-addr :8091 -peers http://node2:8091  # execution node
//
// Front doors admit jobs (per-tenant quotas and rate limits, 429 +
// Retry-After when throttled) and serve resumable streams replayed from
// the store; workers lease jobs, execute them through the sweep engine,
// work-steal expired leases by adopting checkpoints, and federate their
// result caches over -cache-addr/-peers. The same spec produces
// byte-identical rows on any topology.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"flov/internal/cluster"
	"flov/internal/service"
	"flov/internal/sweep"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	queue := flag.Int("queue", 16, "max queued jobs before submissions are rejected with 429")
	runners := flag.Int("runners", 1, "concurrently executing jobs")
	workers := flag.Int("workers", 0, "engine worker goroutines per job (0 = GOMAXPROCS)")
	jobTimeout := flag.Duration("job-timeout", 15*time.Minute, "per-job execution ceiling (0 = none)")
	jobSlice := flag.Duration("job-slice", 0, "preemption time slice: jobs running longer checkpoint and requeue (0 = run to completion)")
	retain := flag.Int("retain", 64, "finished jobs kept queryable")
	cacheDir := flag.String("cache-dir", "", "result cache directory (default $FLOV_SWEEP_CACHE or the user cache dir)")
	noCache := flag.Bool("no-cache", false, "disable the shared result cache")
	drainGrace := flag.Duration("drain-grace", 30*time.Second, "how long SIGTERM waits for in-flight jobs before canceling them")
	enablePprof := flag.Bool("pprof", false, "mount /debug/pprof/")

	// Cluster modes.
	workerMode := flag.Bool("worker", false, "run as a cluster worker pulling leased jobs from -store")
	frontendMode := flag.Bool("frontend", false, "run as a stateless cluster front door over -store")
	storeDir := flag.String("store", "", "cluster job store directory (required with -worker/-frontend)")
	peers := flag.String("peers", "", "comma-separated peer cache base URLs for federation (worker mode)")
	cacheAddr := flag.String("cache-addr", "", "serve this node's cache to peers on this address (worker mode)")
	workerName := flag.String("worker-name", "", "worker identity in leases and events (default host-pid)")
	leaseTTL := flag.Duration("lease-ttl", 10*time.Second, "job lease duration between renewals; a dead worker's job is stealable one TTL later")
	poll := flag.Duration("poll", 250*time.Millisecond, "idle store scan interval (worker mode)")
	tenantQuota := flag.Int("tenant-quota", 4, "max unfinished jobs per tenant (frontend mode)")
	tenantRate := flag.Int("tenant-rate", 120, "max submissions per minute per tenant (frontend mode)")
	flag.Parse()

	if *workerMode && *frontendMode {
		fatal(errors.New("-worker and -frontend are mutually exclusive; run two processes"))
	}
	if (*workerMode || *frontendMode) && *storeDir == "" {
		fatal(errors.New("-worker/-frontend require -store"))
	}

	var cache *sweep.Cache
	if !*noCache {
		dir := *cacheDir
		if dir == "" {
			var err error
			if dir, err = sweep.DefaultDir(); err != nil {
				fatal(err)
			}
		}
		var err error
		if cache, err = sweep.NewCache(dir); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "flovd: result cache at %s\n", dir)
	}

	if *workerMode {
		runWorker(workerConfig{
			storeDir: *storeDir, cache: cache, peers: *peers,
			cacheAddr: *cacheAddr, name: *workerName,
			leaseTTL: *leaseTTL, poll: *poll, slice: *jobSlice,
			workers: *workers,
		})
		return
	}
	if *frontendMode {
		runFrontend(*storeDir, *addr, cluster.FrontDoorConfig{
			MaxActivePerTenant: *tenantQuota,
			RatePerMinute:      *tenantRate,
			JobTimeout:         *jobTimeout,
			Logf:               logf,
		})
		return
	}

	s := service.New(service.Config{
		QueueDepth:  *queue,
		Runners:     *runners,
		Workers:     *workers,
		JobTimeout:  *jobTimeout,
		JobSlice:    *jobSlice,
		RetainJobs:  *retain,
		Cache:       cache,
		EnablePprof: *enablePprof,
	})

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "flovd: listening on %s\n", *addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		// Listen failure (port in use): nothing to drain.
		s.Close()
		fatal(err)
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "flovd: %v, draining (grace %v)\n", got, *drainGrace)
	}

	// Drain first: stop admitting, let in-flight jobs finish so their
	// streams complete; then shut the listener down (it waits for the
	// now-finishing handlers), then hard-stop whatever remains.
	graceCtx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	if err := s.Drain(graceCtx); err != nil {
		fmt.Fprintf(os.Stderr, "flovd: drain grace expired, in-flight jobs canceled\n")
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		_ = httpSrv.Close()
	}
	s.Close()
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, "flovd: bye")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flovd:", err)
	os.Exit(1)
}

func logf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "flovd: "+format+"\n", args...)
}

type workerConfig struct {
	storeDir  string
	cache     *sweep.Cache
	peers     string
	cacheAddr string
	name      string
	leaseTTL  time.Duration
	poll      time.Duration
	slice     time.Duration
	workers   int
}

// runWorker executes leased jobs from the shared store until SIGTERM.
// Shutdown is graceful by lease release: in-flight slices checkpoint
// (when -job-slice is set) and the lease expires immediately, so
// surviving workers continue without waiting out the TTL.
func runWorker(cfg workerConfig) {
	store, err := cluster.Open(cfg.storeDir)
	if err != nil {
		fatal(err)
	}
	name := cfg.name
	if name == "" {
		host, herr := os.Hostname()
		if herr != nil {
			host = "worker"
		}
		name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	var peerList []string
	if cfg.peers != "" {
		peerList = strings.Split(cfg.peers, ",")
	}
	w := &cluster.Worker{
		Store:    store,
		Cache:    cfg.cache,
		Peers:    cluster.NewPeers(peerList),
		Name:     name,
		LeaseTTL: cfg.leaseTTL,
		Poll:     cfg.poll,
		Slice:    cfg.slice,
		Workers:  cfg.workers,
		Logf:     logf,
	}

	var cacheSrv *http.Server
	if cfg.cacheAddr != "" && cfg.cache != nil {
		cacheSrv = &http.Server{
			Addr:              cfg.cacheAddr,
			Handler:           cluster.CacheHandler(cfg.cache),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			if err := cacheSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logf("cache server: %v", err)
			}
		}()
		logf("worker %s: serving cache to peers on %s", name, cfg.cacheAddr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	logf("worker %s: store %s, %d peer(s)", name, cfg.storeDir, w.Peers.Len())
	_ = w.Run(ctx) // returns only when ctx is canceled

	if cacheSrv != nil {
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := cacheSrv.Shutdown(shutCtx); err != nil {
			_ = cacheSrv.Close()
		}
	}
	claimed, stolen, finished, preempted := w.Counters()
	logf("worker %s: bye (claimed %d, stolen %d, finished %d, preempted %d)",
		name, claimed, stolen, finished, preempted)
}

// runFrontend serves the stateless cluster API until SIGTERM. All job
// state is in the store, so front doors need no drain protocol: clients
// reconnect to any front door and resume their streams with ?from=N.
func runFrontend(storeDir, addr string, cfg cluster.FrontDoorConfig) {
	store, err := cluster.Open(storeDir)
	if err != nil {
		fatal(err)
	}
	fd := cluster.NewFrontDoor(store, cfg)
	srv := &http.Server{
		Addr:              addr,
		Handler:           fd.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	logf("frontend: listening on %s over store %s", addr, storeDir)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		fatal(err)
	case got := <-sig:
		logf("frontend: %v, shutting down", got)
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		_ = srv.Close()
	}
	logf("frontend: bye")
}
