// Command flovd is the simulation-serving daemon: a long-lived HTTP
// service over the sweep engine, for workloads that issue many small
// simulation requests programmatically (design-space exploration,
// dashboards) and want a shared result cache instead of per-process
// cold starts.
//
//	flovd -addr :8080                      # serve with the default cache
//	flovsweep -server http://host:8080 ... # delegate a sweep to it
//
// API: POST /v1/sweeps (async submit), POST /v1/sweeps/run (NDJSON
// stream), GET /v1/sweeps/{id}[/stream|/results], /metrics,
// /debug/events, /healthz. Admission is bounded: when -queue jobs are
// waiting, submissions get 429 instead of unbounded buffering. SIGTERM
// drains gracefully: stop admitting, finish (or after -drain-grace,
// cancel) in-flight jobs, then exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"flov/internal/service"
	"flov/internal/sweep"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	queue := flag.Int("queue", 16, "max queued jobs before submissions are rejected with 429")
	runners := flag.Int("runners", 1, "concurrently executing jobs")
	workers := flag.Int("workers", 0, "engine worker goroutines per job (0 = GOMAXPROCS)")
	jobTimeout := flag.Duration("job-timeout", 15*time.Minute, "per-job execution ceiling (0 = none)")
	jobSlice := flag.Duration("job-slice", 0, "preemption time slice: jobs running longer checkpoint and requeue (0 = run to completion)")
	retain := flag.Int("retain", 64, "finished jobs kept queryable")
	cacheDir := flag.String("cache-dir", "", "result cache directory (default $FLOV_SWEEP_CACHE or the user cache dir)")
	noCache := flag.Bool("no-cache", false, "disable the shared result cache")
	drainGrace := flag.Duration("drain-grace", 30*time.Second, "how long SIGTERM waits for in-flight jobs before canceling them")
	enablePprof := flag.Bool("pprof", false, "mount /debug/pprof/")
	flag.Parse()

	var cache *sweep.Cache
	if !*noCache {
		dir := *cacheDir
		if dir == "" {
			var err error
			if dir, err = sweep.DefaultDir(); err != nil {
				fatal(err)
			}
		}
		var err error
		if cache, err = sweep.NewCache(dir); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "flovd: result cache at %s\n", dir)
	}

	s := service.New(service.Config{
		QueueDepth:  *queue,
		Runners:     *runners,
		Workers:     *workers,
		JobTimeout:  *jobTimeout,
		JobSlice:    *jobSlice,
		RetainJobs:  *retain,
		Cache:       cache,
		EnablePprof: *enablePprof,
	})

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "flovd: listening on %s\n", *addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		// Listen failure (port in use): nothing to drain.
		s.Close()
		fatal(err)
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "flovd: %v, draining (grace %v)\n", got, *drainGrace)
	}

	// Drain first: stop admitting, let in-flight jobs finish so their
	// streams complete; then shut the listener down (it waits for the
	// now-finishing handlers), then hard-stop whatever remains.
	graceCtx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	if err := s.Drain(graceCtx); err != nil {
		fmt.Fprintf(os.Stderr, "flovd: drain grace expired, in-flight jobs canceled\n")
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		_ = httpSrv.Close()
	}
	s.Close()
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, "flovd: bye")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flovd:", err)
	os.Exit(1)
}
