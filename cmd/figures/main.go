// Command figures regenerates every table and figure of the FLOV paper's
// evaluation section as CSV files plus aligned ASCII summaries.
//
// Usage:
//
//	figures -exp all            # every experiment (slow: full cycle counts)
//	figures -exp fig6 -quick    # one experiment at ~5x reduced scale
//	figures -exp table1
//
// Experiments: table1, fig6, fig7, fig8ab, fig8cd, fig9, fig10, headline,
// all. Output goes to -out (default ./results).
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"

	"flov/internal/config"
	"flov/internal/experiments"
	"flov/internal/sweep"
	"flov/internal/traffic"
)

// skipped collects failed sweep points across experiments; they are
// reported once at the end instead of aborting whole figures.
var skipped []string

// skip records one failed point.
func skip(figure, desc, err string) {
	if i := strings.IndexByte(err, '\n'); i >= 0 {
		err = err[:i]
	}
	skipped = append(skipped, fmt.Sprintf("%s: %s: %s", figure, desc, err))
}

func main() {
	exp := flag.String("exp", "all", "experiment: table1|fig6|fig7|fig8ab|fig8cd|fig9|fig10|headline|saturation|ablation|scaling|all")
	out := flag.String("out", "results", "output directory for CSV files")
	quick := flag.Bool("quick", false, "reduced cycle counts (~5x faster)")
	seed := flag.Uint64("seed", 42, "seed for gated-core draws")
	workers := flag.Int("workers", 0, "parallel simulation workers (0 = GOMAXPROCS)")
	cacheDir := flag.String("cache-dir", "", "sweep result cache directory (default $FLOV_SWEEP_CACHE or the user cache dir)")
	noCache := flag.Bool("no-cache", false, "disable the sweep result cache")
	progress := flag.Bool("progress", false, "print per-point progress to stderr")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	engine := &sweep.Engine{Workers: *workers}
	if !*noCache {
		dir := *cacheDir
		if dir == "" {
			var err error
			if dir, err = sweep.DefaultDir(); err != nil {
				fatal(err)
			}
		}
		cache, err := sweep.NewCache(dir)
		if err != nil {
			fatal(err)
		}
		engine.Cache = cache
	}
	if *progress {
		engine.Progress = sweep.NewReporter(os.Stderr)
	}
	o := experiments.Options{Quick: *quick, Seed: *seed, Engine: engine}

	run := func(name string, fn func() error) {
		fmt.Printf("== %s ==\n", name)
		if err := fn(); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		fmt.Println()
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }

	if want("table1") {
		run("Table I (simulation testbed parameters)", func() error { return table1(*out) })
	}
	if want("fig6") {
		run("Fig. 6 (uniform random: latency, dynamic, total power)", func() error {
			return latencyPower(*out, "fig6", traffic.Uniform, o)
		})
	}
	if want("fig7") {
		run("Fig. 7 (tornado: latency, dynamic, total power)", func() error {
			return latencyPower(*out, "fig7", traffic.Tornado, o)
		})
	}
	if want("fig8ab") {
		run("Fig. 8 (a)/(b) (latency breakdown)", func() error { return breakdown(*out, o) })
	}
	if want("fig9") {
		run("Fig. 9 (static power)", func() error { return staticPower(*out, o) })
	}
	if want("fig10") {
		run("Fig. 10 (reconfiguration overhead timeline)", func() error { return timeline(*out, o) })
	}
	if want("saturation") {
		run("Saturation sweep (latency vs offered load)", func() error { return saturation(*out, o) })
	}
	if want("ablation") {
		run("Ablations (design-knob sweeps)", func() error { return ablation(*out, o) })
	}
	if want("scaling") {
		run("Mesh-size scaling", func() error { return scaling(*out, o) })
	}
	if want("fig8cd") || want("headline") {
		run("Fig. 8 (c)/(d) + headline (PARSEC full-system)", func() error { return parsec(*out, o, want("fig8cd")) })
	}

	if engine.Cache != nil {
		hits, misses, _ := engine.Cache.Counters()
		if hits+misses > 0 {
			fmt.Printf("sweep cache: %d hits, %d misses (%s)\n", hits, misses, engine.Cache.Dir())
		}
	}
	if len(skipped) > 0 {
		fmt.Fprintf(os.Stderr, "\n%d points skipped due to errors:\n", len(skipped))
		for _, s := range skipped {
			fmt.Fprintln(os.Stderr, " ", s)
		}
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}

// writeCSV writes rows (first row = header) to dir/name.
func writeCSV(dir, name string, rows [][]string) error {
	var b strings.Builder
	for _, r := range rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteByte('\n')
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d rows)\n", path, len(rows)-1)
	return nil
}

func table1(dir string) error {
	cfg := config.Default()
	t := cfg.TableI()
	fmt.Print(t)
	return os.WriteFile(filepath.Join(dir, "table1.txt"), []byte(t), 0o644)
}

// liveSweepRows filters failed points out of a sweep, recording them in
// the end-of-run skipped summary.
func liveSweepRows(figure string, rows []experiments.SweepRow) []experiments.SweepRow {
	live := make([]experiments.SweepRow, 0, len(rows))
	for _, r := range rows {
		if r.Err != "" {
			skip(figure, fmt.Sprintf("%s/%s rate=%.3f gated=%.0f%%",
				r.Pattern, r.Mechanism, r.Rate, r.Frac*100), r.Err)
			continue
		}
		live = append(live, r)
	}
	return live
}

func latencyPower(dir, name string, p traffic.Pattern, o experiments.Options) error {
	rows, err := experiments.LatencyPowerSweep(p, o)
	if err != nil {
		return err
	}
	rows = liveSweepRows(name, rows)
	csv := [][]string{{"pattern", "rate", "gated_frac", "mechanism", "avg_latency", "dyn_power_w", "total_power_w", "static_power_w", "gated_routers", "packets"}}
	for _, r := range rows {
		csv = append(csv, []string{
			r.Pattern, f(r.Rate), f(r.Frac), r.Mechanism,
			f(r.AvgLatency), f(r.DynamicPowerW), f(r.TotalPowerW), f(r.StaticPowerW),
			fmt.Sprint(r.GatedRouters), fmt.Sprint(r.Packets),
		})
	}
	if err := writeCSV(dir, name+".csv", csv); err != nil {
		return err
	}
	// ASCII: one block per rate, latency series per mechanism.
	for _, rate := range experiments.DefaultRates {
		fmt.Printf("-- %s, rate %.2f flits/cycle/node: avg latency (cycles) --\n", p, rate)
		printSeries(rows, rate, func(r experiments.SweepRow) float64 { return r.AvgLatency })
		fmt.Printf("-- %s, rate %.2f: total power (mW) --\n", p, rate)
		printSeries(rows, rate, func(r experiments.SweepRow) float64 { return r.TotalPowerW * 1e3 })
	}
	return nil
}

// sameGrid matches a row's rate/fraction against the grid value it was
// built from. The values are copied, never recomputed, so they should
// be bit-identical; the epsilon only guards against an upstream change
// that starts re-deriving them arithmetically.
func sameGrid(a, b float64) bool {
	return math.Abs(a-b) < 1e-9
}

// printSeries prints a fraction x mechanism grid for one rate.
func printSeries(rows []experiments.SweepRow, rate float64, get func(experiments.SweepRow) float64) {
	mechs := []string{"Baseline", "RP", "rFLOV", "gFLOV"}
	fmt.Printf("%-10s", "gated%")
	for _, m := range mechs {
		fmt.Printf("%10s", m)
	}
	fmt.Println()
	for _, frac := range experiments.DefaultFractions {
		fmt.Printf("%-10.0f", frac*100)
		for _, m := range mechs {
			v := 0.0
			for _, r := range rows {
				if sameGrid(r.Rate, rate) && sameGrid(r.Frac, frac) && r.Mechanism == m {
					v = get(r)
				}
			}
			fmt.Printf("%10.1f", v)
		}
		fmt.Println()
	}
}

func breakdown(dir string, o experiments.Options) error {
	csv := [][]string{{"pattern", "gated_frac", "mechanism", "router", "link", "serialization", "flov", "contention", "total"}}
	for _, p := range []traffic.Pattern{traffic.Uniform, traffic.Tornado} {
		rows, err := experiments.BreakdownSweep(p, o)
		if err != nil {
			return err
		}
		rows = liveSweepRows("fig8ab", rows)
		fmt.Printf("-- %s latency breakdown (router/link/ser/flov/contention) --\n", p)
		for _, r := range rows {
			b := r.Breakdown
			csv = append(csv, []string{
				r.Pattern, f(r.Frac), r.Mechanism,
				f(b.Router), f(b.Link), f(b.Serialization), f(b.FLOV), f(b.Contention), f(b.Total()),
			})
			fmt.Printf("%-9s gated=%3.0f%% %-9s router=%6.1f link=%5.1f ser=%4.1f flov=%5.1f cont=%6.1f total=%6.1f\n",
				r.Pattern, r.Frac*100, r.Mechanism, b.Router, b.Link, b.Serialization, b.FLOV, b.Contention, b.Total())
		}
	}
	return writeCSV(dir, "fig8ab.csv", csv)
}

func staticPower(dir string, o experiments.Options) error {
	rows, err := experiments.StaticPowerSweep(o)
	if err != nil {
		return err
	}
	rows = liveSweepRows("fig9", rows)
	csv := [][]string{{"gated_frac", "mechanism", "static_power_w", "gated_routers"}}
	for _, r := range rows {
		csv = append(csv, []string{f(r.Frac), r.Mechanism, f(r.StaticPowerW), fmt.Sprint(r.GatedRouters)})
	}
	if err := writeCSV(dir, "fig9.csv", csv); err != nil {
		return err
	}
	fmt.Println("-- static power (mW) --")
	printSeries(rows, 0.02, func(r experiments.SweepRow) float64 { return r.StaticPowerW * 1e3 })
	return nil
}

func timeline(dir string, o experiments.Options) error {
	rows, err := experiments.ReconfigTimeline([]config.Mechanism{config.RP, config.GFLOV}, o)
	if err != nil {
		return err
	}
	csv := [][]string{{"mechanism", "bin_start", "avg_latency", "packets"}}
	for _, r := range rows {
		csv = append(csv, []string{r.Mechanism, fmt.Sprint(r.BinStart), f(r.AvgLat), fmt.Sprint(r.Packets)})
	}
	if err := writeCSV(dir, "fig10.csv", csv); err != nil {
		return err
	}
	fmt.Printf("RP peak bin latency:    %.1f cycles\n", experiments.PeakTimelineLatency(rows, "RP", 0))
	fmt.Printf("gFLOV peak bin latency: %.1f cycles\n", experiments.PeakTimelineLatency(rows, "gFLOV", 0))
	return nil
}

func saturation(dir string, o experiments.Options) error {
	rows, err := experiments.SaturationSweep(traffic.Uniform, 0.3, o)
	if err != nil {
		return err
	}
	rows = liveSweepRows("saturation", rows)
	csv := [][]string{{"rate", "mechanism", "avg_latency", "undelivered", "packets"}}
	for _, r := range rows {
		csv = append(csv, []string{f(r.Rate), r.Mechanism, f(r.AvgLatency), fmt.Sprint(r.Undelivered), fmt.Sprint(r.Packets)})
	}
	if err := writeCSV(dir, "saturation.csv", csv); err != nil {
		return err
	}
	fmt.Println("-- avg latency vs offered load (30% gated; * = saturated) --")
	mechs := []string{"Baseline", "RP", "rFLOV", "gFLOV"}
	fmt.Printf("%-8s", "rate")
	for _, m := range mechs {
		fmt.Printf("%11s", m)
	}
	fmt.Println()
	for _, rate := range experiments.SaturationRates {
		fmt.Printf("%-8.2f", rate)
		for _, m := range mechs {
			for _, r := range rows {
				if sameGrid(r.Rate, rate) && r.Mechanism == m {
					mark := " "
					if r.Undelivered > 0 {
						mark = "*"
					}
					fmt.Printf("%10.1f%s", r.AvgLatency, mark)
				}
			}
		}
		fmt.Println()
	}
	return nil
}

func ablation(dir string, o experiments.Options) error {
	params := []experiments.AblationParam{
		experiments.AblEscapeTimeout, experiments.AblWakeupLatency,
		experiments.AblIdleThreshold, experiments.AblBufferDepth,
		experiments.AblTransitionTimeout,
	}
	csv := [][]string{{"param", "value", "mechanism", "avg_latency", "static_w", "total_w", "gated_routers"}}
	for _, p := range params {
		rows, err := experiments.Ablate(p, nil, o)
		if err != nil {
			return err
		}
		for _, r := range rows {
			if r.Err != "" {
				skip("ablation", fmt.Sprintf("%s=%d", r.Param, r.Value), r.Err)
				continue
			}
			csv = append(csv, []string{r.Param, fmt.Sprint(r.Value), r.Mechanism, f(r.AvgLatency), f(r.StaticW), f(r.TotalW), fmt.Sprint(r.GatedRout)})
			fmt.Printf("%-20s = %-5d lat=%6.1f Pstat=%6.1fmW Ptot=%6.1fmW gated=%d\n",
				r.Param, r.Value, r.AvgLatency, r.StaticW*1e3, r.TotalW*1e3, r.GatedRout)
		}
	}
	return writeCSV(dir, "ablation.csv", csv)
}

func scaling(dir string, o experiments.Options) error {
	rows, err := experiments.ScalingSweep(o)
	if err != nil {
		return err
	}
	csv := [][]string{{"width", "height", "mechanism", "avg_latency", "static_w", "total_w", "gated_routers", "undelivered"}}
	fmt.Println("-- mesh scaling (uniform 0.02, 50% gated) --")
	for _, r := range rows {
		if r.Err != "" {
			skip("scaling", fmt.Sprintf("%dx%d/%s", r.Width, r.Height, r.Mechanism), r.Err)
			continue
		}
		csv = append(csv, []string{
			fmt.Sprint(r.Width), fmt.Sprint(r.Height), r.Mechanism,
			f(r.AvgLatency), f(r.StaticPowerW), f(r.TotalPowerW),
			fmt.Sprint(r.GatedRouters), fmt.Sprint(r.Undelivered),
		})
		fmt.Printf("%2dx%-2d %-9s lat=%7.1f Pstat=%7.1fmW Ptot=%7.1fmW gated=%3d/%d\n",
			r.Width, r.Height, r.Mechanism, r.AvgLatency, r.StaticPowerW*1e3, r.TotalPowerW*1e3, r.GatedRouters, r.Routers)
	}
	return writeCSV(dir, "scaling.csv", csv)
}

func parsec(dir string, o experiments.Options, writeRows bool) error {
	rows, err := experiments.ParsecSweep(o)
	if err != nil {
		return err
	}
	for _, r := range rows {
		if r.Err != "" {
			skip("fig8cd", fmt.Sprintf("%s/%s", r.Benchmark, r.Mechanism), r.Err)
		}
	}
	if writeRows {
		csv := [][]string{{"benchmark", "mechanism", "runtime_cycles", "static_pj", "dynamic_pj", "total_pj", "norm_static", "norm_total", "norm_runtime"}}
		for _, r := range rows {
			if r.Err != "" {
				continue
			}
			csv = append(csv, []string{
				r.Benchmark, r.Mechanism, fmt.Sprint(r.RuntimeCyc),
				f(r.StaticPJ), f(r.DynamicPJ), f(r.TotalPJ),
				f(r.NormStatic), f(r.NormTotal), f(r.NormRuntime),
			})
		}
		if err := writeCSV(dir, "fig8cd.csv", csv); err != nil {
			return err
		}
		fmt.Println("-- normalized static energy / runtime (vs Baseline) --")
		for _, r := range rows {
			if r.Err != "" {
				continue
			}
			fmt.Printf("%-14s %-9s Estat=%.3f Etot=%.3f runtime=%.3f\n",
				r.Benchmark, r.Mechanism, r.NormStatic, r.NormTotal, r.NormRuntime)
		}
	}
	h := experiments.Summarize(rows)
	summary := fmt.Sprintf(
		"FLOV (gFLOV) across %d PARSEC benchmarks:\n"+
			"  static energy vs Baseline: -%.1f%%  (paper: -43%%)\n"+
			"  runtime vs Baseline:       +%.1f%%  (paper: ~+1%%)\n"+
			"  static energy vs RP:       -%.1f%%  (paper: -22%%)\n"+
			"  total energy vs RP:        -%.1f%%  (paper: -18%%)\n",
		h.Benchmarks, h.StaticVsBaselinePct, h.RuntimeVsBasePct, h.StaticVsRPPct, h.TotalVsRPPct)
	fmt.Print(summary)
	return os.WriteFile(filepath.Join(dir, "headline.txt"), []byte(summary), 0o644)
}

func f(v float64) string { return fmt.Sprintf("%.4f", v) }
