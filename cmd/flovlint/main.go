// Command flovlint runs the simulator's determinism and invariant
// analyzers over the module: no ambient randomness or wall-clock time
// in simulation packages, no map-iteration order leaking into results,
// no float == comparisons, no copied locks, no silently discarded
// errors. See internal/analysis for the rules and the
// //flovlint:allow suppression syntax.
//
// Usage:
//
//	flovlint ./...              # whole module (the CI gate)
//	flovlint ./internal/core    # one package
//	flovlint -rule floatcmp ./...
//
// Exit status: 0 clean, 1 findings, 2 operational error (unparseable
// or untypeable code included — broken code cannot be vouched for).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"flov/internal/analysis"
)

func main() {
	rules := flag.String("rule", "", "comma-separated analyzer subset (default: all)")
	tags := flag.String("tags", "", "comma-separated build tags (e.g. flovdebug)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := selectAnalyzers(*rules)
	if err != nil {
		fatal(err)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := analysis.FindModuleRoot(wd)
	if err != nil {
		fatal(err)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fatal(err)
	}
	if *tags != "" {
		loader.BuildTags = strings.Split(*tags, ",")
	}

	paths, err := loader.Discover(patterns)
	if err != nil {
		fatal(err)
	}

	findings := 0
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fatal(err)
		}
		for _, d := range analysis.RunPackage(pkg, analyzers) {
			rel, rerr := relToRoot(root, d)
			if rerr != nil {
				rel = d.String()
			}
			fmt.Println(rel)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "flovlint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

// relToRoot rewrites a diagnostic's filename relative to the module
// root for stable, clickable output.
func relToRoot(root string, d analysis.Diagnostic) (string, error) {
	rel, err := filepath.Rel(root, d.Pos.Filename)
	if err != nil {
		return "", err
	}
	d.Pos.Filename = rel
	return d.String(), nil
}

func selectAnalyzers(rules string) ([]*analysis.Analyzer, error) {
	all := analysis.Analyzers()
	if rules == "" {
		return all, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(rules, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flovlint:", err)
	os.Exit(2)
}
