// Command flovlint runs the simulator's determinism and invariant
// analyzers over the module: no ambient randomness or wall-clock time
// in simulation packages, no map-iteration order leaking into results,
// no float == comparisons, no copied locks, no silently discarded
// errors, exhaustive enum switches, lock discipline in the serving
// layer, and — module-wide, over the static call graph — five proofs:
// that the simulation entry points never transitively reach a
// wall-clock, math/rand, environment, or map-order source (reach);
// that every struct field reachable from the snapshot roots is
// round-tripped by CaptureState/RestoreState or carries a
// //flovsnap:skip <reason> exemption (statecov); that the hot
// simulation paths (network.Step, the router pipeline, the sim.Delay
// operations) perform no steady-state heap allocation — make/new,
// growing append, interface boxing, fmt calls, escaping closures —
// reported with the full call chain from the root (hotalloc); that the
// gated-router cycle branch mutates nothing outside the allowlisted
// FLOV latch/wake state, via interprocedural mutation summaries
// (purity); and that energy-model arithmetic never mixes Picojoules,
// Watts and Hertz or adopts raw constants without an explicit
// conversion (unitsafe). See internal/analysis for the rules and the
// //flovlint:allow suppression syntax.
//
// Usage:
//
//	flovlint ./...                  # whole module (the CI gate)
//	flovlint ./internal/core        # one package
//	flovlint -rule floatcmp ./...
//	flovlint -list-rules            # every rule with its one-line doc
//	flovlint -json ./...            # findings as JSON on stdout
//	flovlint -sarif out.sarif ./... # SARIF 2.1.0 log ("-" = stdout)
//	flovlint -write-baseline ./...  # acknowledge current findings
//
// Findings listed in the checked-in baseline (.flovlint-baseline.json
// at the module root, override with -baseline) are acknowledged and do
// not fail the run; everything else does. The baseline in this repo is
// intentionally empty.
//
// Exit status: 0 clean, 1 findings, 2 operational error (unparseable
// or untypeable code included — broken code cannot be vouched for).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"flov/internal/analysis"
)

// defaultBaselineName is the checked-in baseline file at the module root.
const defaultBaselineName = ".flovlint-baseline.json"

func main() {
	rules := flag.String("rule", "", "comma-separated analyzer subset (default: all)")
	tags := flag.String("tags", "", "comma-separated build tags (e.g. flovdebug)")
	list := flag.Bool("list", false, "list analyzers and exit")
	listRulesFlag := flag.Bool("list-rules", false, "list every rule with its one-line doc and exit")
	jsonOut := flag.Bool("json", false, "emit findings as JSON on stdout")
	sarifOut := flag.String("sarif", "", "write a SARIF 2.1.0 log to this file (\"-\" = stdout)")
	baselinePath := flag.String("baseline", "", "baseline file (default: "+defaultBaselineName+" at the module root)")
	writeBaseline := flag.Bool("write-baseline", false, "rewrite the baseline to acknowledge all current findings")
	rootsFlag := flag.String("roots", "", "comma-separated reach entry points, pkg.Func or pkg.Recv.Func (default: the built-in simulator roots)")
	hotRootsFlag := flag.String("hotroots", "", "comma-separated hotalloc entry points, same syntax as -roots (default: the built-in hot-path roots)")
	pureRootsFlag := flag.String("pureroots", "", "comma-separated purity entry points, same syntax as -roots (default: the gated-router cycle branch)")
	flag.Parse()

	if *list || *listRulesFlag {
		listRules(os.Stdout)
		return
	}

	pkgAnalyzers, modAnalyzers, err := selectAnalyzers(*rules)
	if err != nil {
		fatal(err)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := analysis.FindModuleRoot(wd)
	if err != nil {
		fatal(err)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fatal(err)
	}
	if *tags != "" {
		loader.BuildTags = strings.Split(*tags, ",")
	}

	paths, err := loader.Discover(patterns)
	if err != nil {
		fatal(err)
	}

	var diags []analysis.Diagnostic
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fatal(err)
		}
		diags = append(diags, analysis.RunPackage(pkg, pkgAnalyzers)...)
	}

	if len(modAnalyzers) > 0 {
		module := analysis.NewModule(loader.ModulePath, loader.Fset, loader.Packages())
		if *rootsFlag != "" {
			for _, spec := range strings.Split(*rootsFlag, ",") {
				r, err := analysis.ParseRoot(strings.TrimSpace(spec))
				if err != nil {
					fatal(err)
				}
				module.Roots = append(module.Roots, r)
			}
		}
		if *hotRootsFlag != "" {
			for _, spec := range strings.Split(*hotRootsFlag, ",") {
				r, err := analysis.ParseRoot(strings.TrimSpace(spec))
				if err != nil {
					fatal(err)
				}
				module.HotRoots = append(module.HotRoots, r)
			}
		}
		if *pureRootsFlag != "" {
			for _, spec := range strings.Split(*pureRootsFlag, ",") {
				r, err := analysis.ParseRoot(strings.TrimSpace(spec))
				if err != nil {
					fatal(err)
				}
				module.PureRoots = append(module.PureRoots, r)
			}
		}
		diags = append(diags, analysis.RunModule(module, modAnalyzers)...)
	}
	analysis.SortDiagnostics(diags)

	bpath := *baselinePath
	if bpath == "" {
		bpath = filepath.Join(root, defaultBaselineName)
	}

	if *writeBaseline {
		if err := analysis.WriteBaseline(bpath, root, diags); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "flovlint: baselined %d finding(s) to %s\n", len(diags), bpath)
		return
	}

	baseline, err := analysis.LoadBaseline(bpath)
	if err != nil {
		fatal(err)
	}
	fresh, stale := analysis.ApplyBaseline(baseline, root, diags)
	for _, e := range stale {
		fmt.Fprintf(os.Stderr, "flovlint: baseline entry no longer matches (fixed? remove it): %s %s: %s\n",
			e.Rule, e.File, e.Message)
	}

	if *sarifOut != "" {
		if err := writeSARIFOutput(*sarifOut, root, fresh); err != nil {
			fatal(err)
		}
	}
	switch {
	case *jsonOut:
		if err := analysis.WriteJSON(os.Stdout, root, fresh); err != nil {
			fatal(err)
		}
	default:
		for _, d := range fresh {
			fmt.Println(relToRoot(root, d))
		}
	}
	if len(fresh) > 0 {
		fmt.Fprintf(os.Stderr, "flovlint: %d finding(s)\n", len(fresh))
		os.Exit(1)
	}
}

// listRules prints every rule with its one-line doc, per-package rules
// first, then module-wide, both in registration order. The README's
// rule table is checked against this list by TestReadmeDocumentsEveryRule.
func listRules(w io.Writer) {
	for _, a := range analysis.Analyzers() {
		_, _ = fmt.Fprintf(w, "%-10s %s\n", a.Name, a.Doc)
	}
	for _, a := range analysis.ModuleAnalyzers() {
		_, _ = fmt.Fprintf(w, "%-10s %s (module-wide)\n", a.Name, a.Doc)
	}
}

// writeSARIFOutput writes the SARIF log to path, with "-" for stdout.
func writeSARIFOutput(path, root string, diags []analysis.Diagnostic) error {
	if path == "-" {
		return analysis.WriteSARIF(os.Stdout, root, diags)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := analysis.WriteSARIF(f, root, diags); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return err
	}
	return f.Close()
}

// relToRoot rewrites a diagnostic's filename relative to the module
// root for stable, clickable output.
func relToRoot(root string, d analysis.Diagnostic) string {
	rel, err := filepath.Rel(root, d.Pos.Filename)
	if err != nil {
		return d.String()
	}
	d.Pos.Filename = rel
	return d.String()
}

// selectAnalyzers resolves a -rule list against both the per-package
// and the module-wide analyzer sets.
func selectAnalyzers(rules string) ([]*analysis.Analyzer, []*analysis.ModuleAnalyzer, error) {
	pkgAll := analysis.Analyzers()
	modAll := analysis.ModuleAnalyzers()
	if rules == "" {
		return pkgAll, modAll, nil
	}
	pkgByName := make(map[string]*analysis.Analyzer, len(pkgAll))
	for _, a := range pkgAll {
		pkgByName[a.Name] = a
	}
	modByName := make(map[string]*analysis.ModuleAnalyzer, len(modAll))
	for _, a := range modAll {
		modByName[a.Name] = a
	}
	var pkgOut []*analysis.Analyzer
	var modOut []*analysis.ModuleAnalyzer
	for _, name := range strings.Split(rules, ",") {
		name = strings.TrimSpace(name)
		if a, ok := pkgByName[name]; ok {
			pkgOut = append(pkgOut, a)
			continue
		}
		if a, ok := modByName[name]; ok {
			modOut = append(modOut, a)
			continue
		}
		return nil, nil, fmt.Errorf("unknown analyzer %q", name)
	}
	return pkgOut, modOut, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flovlint:", err)
	os.Exit(2)
}
