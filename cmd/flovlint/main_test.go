package main

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

// TestReadmeDocumentsEveryRule keeps the README's rule table honest:
// every rule `flovlint -list-rules` prints must appear there by name
// and with its exact one-line doc, so registering or rewording an
// analyzer without updating the docs fails the build.
func TestReadmeDocumentsEveryRule(t *testing.T) {
	var buf bytes.Buffer
	listRules(&buf)
	readme, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	text := string(readme)

	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) < 12 {
		t.Fatalf("expected at least 12 rules, -list-rules printed %d lines", len(lines))
	}
	for _, line := range lines {
		name, doc, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("unparseable -list-rules line %q", line)
		}
		doc = strings.TrimSpace(doc)
		if !strings.Contains(text, "`"+name+"`") {
			t.Errorf("README does not mention rule `%s`", name)
		}
		if !strings.Contains(text, doc) {
			t.Errorf("README rule table out of date for %s: missing %q", name, doc)
		}
	}
}
