// Command flovbench gates benchmark regressions against the committed
// baseline (BENCH_sweep.json at the module root). It consumes the text
// output of `go test -bench -benchmem` and compares ns/op and allocs/op
// per benchmark: allocs/op tightly (near-deterministic), ns/op loosely
// (cross-machine noise). See internal/analysis/benchgate for the rules.
//
// Usage:
//
//	go test -bench 'Step|Sweep' -benchmem ./... | flovbench -check
//	flovbench -check -in bench.txt -report compare.txt
//	go test -bench 'Step|Sweep' -benchmem ./... | flovbench -update
//
// -check exits 1 on any regression, and also on a baselined benchmark
// missing from the input (a silently shrinking run is not a passing
// run). -update rewrites the baseline from the input instead.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"flov/internal/analysis"
	"flov/internal/analysis/benchgate"
)

const defaultBaselineName = "BENCH_sweep.json"

func main() {
	check := flag.Bool("check", false, "compare input against the baseline; exit 1 on regression")
	update := flag.Bool("update", false, "rewrite the baseline from the input")
	in := flag.String("in", "", "benchmark output file (default: stdin)")
	baselinePath := flag.String("baseline", "", "baseline file (default: "+defaultBaselineName+" at the module root)")
	reportPath := flag.String("report", "", "also write the comparison report to this file (the CI artifact)")
	note := flag.String("note", "", "with -update: provenance note stored in the baseline")
	nsRatio := flag.Float64("ns-ratio", benchgate.DefaultLimits().NsRatio, "allowed ns/op ratio over baseline")
	allocsRatio := flag.Float64("allocs-ratio", benchgate.DefaultLimits().AllocsRatio, "allowed allocs/op ratio over baseline")
	allocsSlack := flag.Float64("allocs-slack", benchgate.DefaultLimits().AllocsSlack, "absolute allocs/op allowance on top of the ratio")
	flag.Parse()

	if *check == *update {
		fatal(fmt.Errorf("exactly one of -check or -update is required"))
	}

	var src io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer func() { _ = f.Close() }() // read-only input
		src = f
	}
	current, err := benchgate.ParseBench(src)
	if err != nil {
		fatal(err)
	}
	if len(current) == 0 {
		fatal(fmt.Errorf("no benchmark results in input (did the bench run fail?)"))
	}

	bpath := *baselinePath
	if bpath == "" {
		wd, err := os.Getwd()
		if err != nil {
			fatal(err)
		}
		root, err := analysis.FindModuleRoot(wd)
		if err != nil {
			fatal(err)
		}
		bpath = filepath.Join(root, defaultBaselineName)
	}

	if *update {
		b := &benchgate.Baseline{Note: *note, Benchmarks: current}
		if err := benchgate.Write(bpath, b); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "flovbench: baselined %d benchmark(s) to %s\n", len(current), bpath)
		return
	}

	baseline, err := benchgate.Load(bpath)
	if err != nil {
		fatal(err)
	}
	lim := benchgate.Limits{NsRatio: *nsRatio, AllocsRatio: *allocsRatio, AllocsSlack: *allocsSlack}
	deltas, missing := benchgate.Compare(baseline, current, lim)

	report := benchgate.Report(deltas, missing)
	fmt.Print(report)
	if *reportPath != "" {
		if err := os.WriteFile(*reportPath, []byte(report), 0o644); err != nil {
			fatal(err)
		}
	}

	failed := len(missing) > 0
	for _, d := range deltas {
		if d.Regressed() {
			failed = true
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "flovbench: benchmark gate FAILED")
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "flovbench: %d benchmark(s) within limits\n", len(deltas))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flovbench:", err)
	os.Exit(2)
}
