// Command flovsweep runs a grid of independent simulation points across
// a worker pool, with a content-addressed on-disk result cache: re-running
// an unchanged spec only reads cached rows, so iterating on a design
// sweep costs seconds, not CPU-hours.
//
// The grid is the cross product of the comma-separated flag lists (or a
// JSON spec file), in pattern x rate x fraction x mechanism order:
//
//	flovsweep -pattern uniform,tornado -rate 0.02,0.08 -gated 0,0.3,0.5 -mech all
//	flovsweep -bench all -mech baseline,gflov            # PARSEC closed-loop grid
//	flovsweep -spec sweep.json -format json -out rows.json
//	flovsweep -clear-cache                               # drop every cached result
//
// Cache and timing stats go to stderr; rows go to -out (default stdout)
// as CSV or JSON. The JSON row schema is shared with `flovsim -json`.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"flov"
	"flov/internal/service"
	"flov/internal/service/client"
	"flov/internal/sweep"
)

func main() {
	patterns := flag.String("pattern", "uniform", "comma-separated traffic patterns")
	rates := flag.String("rate", "0.02", "comma-separated injection rates (flits/cycle/node)")
	fracs := flag.String("gated", "0.5", "comma-separated gated-core fractions")
	mechs := flag.String("mech", "all", "comma-separated mechanisms, or 'all'")
	benches := flag.String("bench", "", "comma-separated PARSEC benchmarks (or 'all'); replaces the synthetic grid")
	width := flag.Int("width", 0, "mesh width (0 = Table I default)")
	height := flag.Int("height", 0, "mesh height (0 = Table I default)")
	cycles := flag.Int64("cycles", 0, "total simulated cycles (0 = default)")
	warmup := flag.Int64("warmup", 0, "warmup cycles (0 = default)")
	seed := flag.Uint64("seed", 1, "simulation + gated-set seed")
	maxCycles := flag.Int64("max-cycles", 0, "PARSEC run bound (0 = default)")
	faultsPath := flag.String("faults", "", "fault-spec JSON file attached to every synthetic point (overrides the spec file's faults)")
	specPath := flag.String("spec", "", "JSON sweep spec file (overrides the grid flags)")
	workers := flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	cacheDir := flag.String("cache-dir", "", "result cache directory (default $FLOV_SWEEP_CACHE or the user cache dir)")
	noCache := flag.Bool("no-cache", false, "disable the result cache")
	clearCache := flag.Bool("clear-cache", false, "remove every cached result and exit")
	format := flag.String("format", "csv", "output format: csv|json")
	out := flag.String("out", "", "output file (default stdout)")
	quiet := flag.Bool("quiet", false, "suppress the per-job progress ticker")
	server := flag.String("server", "", "delegate the sweep to a running flovd at this base URL (cache flags then apply server-side)")
	runDir := flag.String("run-dir", "", "run directory: finished rows append to <dir>/rows.ndjson as they complete, surviving interruption")
	resume := flag.Bool("resume", false, "with -run-dir: skip points whose rows are already durable from an interrupted run")
	flag.Parse()

	if *resume && *runDir == "" {
		fatal(fmt.Errorf("-resume requires -run-dir"))
	}
	if *runDir != "" && *server != "" {
		fatal(fmt.Errorf("-run-dir is local-only; flovd owns persistence for delegated sweeps"))
	}

	if *server != "" {
		if *clearCache {
			fatal(fmt.Errorf("-clear-cache is local-only; the -server cache belongs to flovd"))
		}
		spec, err := buildSpec(*specPath, *faultsPath, *patterns, *rates, *fracs, *mechs, *benches,
			*width, *height, *cycles, *warmup, *seed, *maxCycles)
		if err != nil {
			fatal(err)
		}
		runRemote(*server, spec, *format, *out, *quiet)
		return
	}

	cache, err := openCache(*cacheDir, *noCache)
	if err != nil {
		fatal(err)
	}
	if *clearCache {
		if cache == nil {
			fatal(fmt.Errorf("-clear-cache with -no-cache makes no sense"))
		}
		n, err := cache.Len()
		if err != nil {
			fatal(err)
		}
		if err := cache.Clear(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "cleared %d cached results under %s\n", n, cache.Dir())
		return
	}

	spec, err := buildSpec(*specPath, *faultsPath, *patterns, *rates, *fracs, *mechs, *benches,
		*width, *height, *cycles, *warmup, *seed, *maxCycles)
	if err != nil {
		fatal(err)
	}
	jobs, err := spec.Jobs()
	if err != nil {
		fatal(err)
	}
	if len(jobs) == 0 {
		fatal(fmt.Errorf("spec expands to zero jobs"))
	}

	// Run-directory persistence: load durable rows from an interrupted
	// run, skip their points, and append new rows as they complete.
	loaded := map[string]sweep.Result{}
	var recorder *rowRecorder
	if *runDir != "" {
		if err := os.MkdirAll(*runDir, 0o755); err != nil {
			fatal(err)
		}
		rowsPath := filepath.Join(*runDir, "rows.ndjson")
		if *resume {
			loaded = loadRows(rowsPath)
		}
		if recorder, err = newRowRecorder(rowsPath, *resume); err != nil {
			fatal(err)
		}
	}
	var pendingIdx []int
	pending := make([]sweep.Job, 0, len(jobs))
	for i, j := range jobs {
		if _, ok := loaded[j.Hash()]; !ok {
			pendingIdx = append(pendingIdx, i)
			pending = append(pending, j)
		}
	}
	reused := len(jobs) - len(pending)
	if *resume {
		fmt.Fprintf(os.Stderr, "resume: reused %d of %d rows from %s\n",
			reused, len(jobs), filepath.Join(*runDir, "rows.ndjson"))
	}

	engine := &sweep.Engine{Workers: *workers, Cache: cache}
	var observers multiProgress
	if !*quiet {
		observers = append(observers, sweep.NewReporter(os.Stderr))
	}
	if recorder != nil {
		observers = append(observers, recorder)
	}
	if len(observers) > 0 {
		engine.Progress = observers
	}

	// SIGINT stops scheduling new points; finished points still print.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	fresh := engine.Run(ctx, pending)
	if recorder != nil {
		if err := recorder.Close(); err != nil {
			fatal(err)
		}
	}
	results := make([]sweep.Result, len(jobs))
	for i, j := range jobs {
		if r, ok := loaded[j.Hash()]; ok {
			results[i] = r
		}
	}
	for k, i := range pendingIdx {
		results[i] = fresh[k]
	}
	stats := sweep.Summarize(results, time.Since(start))

	if err := writeRows(results, *format, *out); err != nil {
		fatal(err)
	}

	fmt.Fprintln(os.Stderr, stats)
	if cache != nil {
		hits, misses, writes := cache.Counters()
		fmt.Fprintf(os.Stderr, "cache %s: %d hits, %d misses, %d writes\n",
			cache.Dir(), hits, misses, writes)
	}
	exitOnFailures(results, stats.Errors)
}

// multiProgress fans engine events out to several observers.
type multiProgress []sweep.Progress

// Event implements sweep.Progress.
func (m multiProgress) Event(ev sweep.Event) {
	for _, p := range m {
		p.Event(ev)
	}
}

// rowRecorder appends finished rows to rows.ndjson as they complete, so
// an interrupted sweep keeps everything simulated so far. Error rows are
// not persisted: a resume should retry them, not immortalize them.
type rowRecorder struct {
	mu  sync.Mutex
	f   *os.File
	enc *json.Encoder
}

// newRowRecorder opens the row log, truncating for fresh runs and
// appending when resuming.
func newRowRecorder(path string, appendMode bool) (*rowRecorder, error) {
	flags := os.O_CREATE | os.O_WRONLY
	if appendMode {
		flags |= os.O_APPEND
	} else {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, err
	}
	return &rowRecorder{f: f, enc: json.NewEncoder(f)}, nil
}

// Event implements sweep.Progress; called from worker goroutines.
func (r *rowRecorder) Event(ev sweep.Event) {
	if ev.Result == nil || ev.Result.Err != "" {
		return
	}
	if ev.Type != sweep.JobDone && ev.Type != sweep.JobCacheHit {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	// Row persistence is best-effort, like cache fills: a full disk must
	// not kill the sweep producing the rows.
	_ = r.enc.Encode(ev.Result)
}

// Close flushes and closes the row log.
func (r *rowRecorder) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.f.Close()
}

// loadRows reads durable rows from an interrupted run, keyed by job
// hash. Unparseable lines (a torn tail from a crash mid-write) and
// error-carrying rows are skipped; their points re-simulate.
func loadRows(path string) map[string]sweep.Result {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	rows := map[string]sweep.Result{}
	for _, line := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var r sweep.Result
		if err := json.Unmarshal([]byte(line), &r); err != nil || r.Err != "" {
			continue
		}
		rows[r.Job.Hash()] = r
	}
	return rows
}

// runRemote delegates the sweep to a flovd daemon: same spec, same
// output paths and exit codes, progress ticker fed by the NDJSON
// stream instead of local engine callbacks.
func runRemote(base string, spec flov.SweepSpec, format, out string, quiet bool) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	onEvent := func(ev service.StreamEvent) {
		if quiet {
			return
		}
		switch {
		case ev.Type == service.EventAccepted:
			fmt.Fprintf(os.Stderr, "flovd accepted job %s (%d points)\n", ev.ID, ev.Total)
		case ev.Type == service.EventPoint && ev.Status == service.PointError:
			fmt.Fprintf(os.Stderr, "[%d/%d] %-40s ERROR: %s\n", ev.Index+1, ev.Total, ev.Desc, firstLine(ev.Err))
		case ev.Type == service.EventPoint:
			fmt.Fprintf(os.Stderr, "[%d/%d] %-40s %s (%.2fs)\n", ev.Index+1, ev.Total, ev.Desc, ev.Status, ev.WallMS/1000)
		}
	}
	results, stats, err := client.New(base).Run(ctx, spec, onEvent)
	if err != nil {
		fatal(err)
	}
	if err := writeRows(results, format, out); err != nil {
		fatal(err)
	}
	fmt.Fprintln(os.Stderr, stats)
	exitOnFailures(results, stats.Errors)
}

// writeRows renders results to -out (or stdout) in the chosen format.
func writeRows(results []flov.SweepResult, format, out string) error {
	w := os.Stdout
	var outFile *os.File
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		outFile = f
		w = f
	}
	var err error
	switch format {
	case "csv":
		err = writeCSV(w, results)
	case "json":
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		err = enc.Encode(results)
	default:
		err = fmt.Errorf("unknown format %q (want csv or json)", format)
	}
	// Close before reporting: a close error on a freshly written file
	// means rows may not have reached the disk.
	if outFile != nil {
		if cerr := outFile.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// exitOnFailures lists failed points on stderr and exits 1, matching
// the local engine path's contract.
func exitOnFailures(results []flov.SweepResult, errs int) {
	if errs == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "%d points failed:\n", errs)
	for _, r := range results {
		if r.Err != "" {
			fmt.Fprintf(os.Stderr, "  %s: %s\n", r.Job.Desc(), firstLine(r.Err))
		}
	}
	os.Exit(1)
}

// openCache resolves the cache directory and opens the store.
func openCache(dir string, disabled bool) (*sweep.Cache, error) {
	if disabled {
		return nil, nil
	}
	if dir == "" {
		var err error
		if dir, err = sweep.DefaultDir(); err != nil {
			return nil, err
		}
	}
	return sweep.NewCache(dir)
}

// buildSpec loads the spec file or folds the grid flags into one; a
// -faults file attaches (or replaces) the fault scenario either way.
func buildSpec(path, faultsPath, patterns, rates, fracs, mechs, benches string,
	width, height int, cycles, warmup int64, seed uint64, maxCycles int64) (flov.SweepSpec, error) {
	var spec flov.SweepSpec
	if path != "" {
		loaded, err := sweep.LoadSpec(path)
		if err != nil {
			return flov.SweepSpec{}, err
		}
		spec = loaded
	} else {
		rateList, err := parseFloats(rates)
		if err != nil {
			return flov.SweepSpec{}, fmt.Errorf("-rate: %w", err)
		}
		fracList, err := parseFloats(fracs)
		if err != nil {
			return flov.SweepSpec{}, fmt.Errorf("-gated: %w", err)
		}
		spec = flov.SweepSpec{
			Patterns:   splitList(patterns),
			Rates:      rateList,
			GatedFracs: fracList,
			Mechanisms: splitList(mechs),
			Benchmarks: splitList(benches),
			Width:      width,
			Height:     height,
			Cycles:     cycles,
			Warmup:     warmup,
			Seed:       seed,
			MaxCycles:  maxCycles,
		}
	}
	if faultsPath != "" {
		data, err := os.ReadFile(faultsPath)
		if err != nil {
			return flov.SweepSpec{}, fmt.Errorf("-faults: %w", err)
		}
		fs, err := flov.ParseFaultSpec(data)
		if err != nil {
			return flov.SweepSpec{}, fmt.Errorf("-faults: %w", err)
		}
		spec.Faults = &fs
	}
	return spec, nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range splitList(s) {
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// writeCSV flattens results into one row per point. Synthetic and PARSEC
// points share the column set; inapplicable cells are empty.
func writeCSV(w *os.File, results []flov.SweepResult) error {
	var b strings.Builder
	b.WriteString("kind,pattern,bench,rate,gated_frac,mechanism,seed,avg_latency,static_power_w,dyn_power_w,total_power_w,gated_routers,packets,undelivered,runtime_cycles,static_pj,total_pj,cached,wall_s,err\n")
	for _, r := range results {
		j := r.Job
		f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
		var cells []string
		if j.Kind == flov.SweepPARSEC {
			cells = []string{
				"parsec", "", j.Profile.Name, "", "", j.Mechanism.String(), fmt.Sprint(j.Seed),
				f(r.Out.AvgPktLatency), "", "", "", "", "", "",
				fmt.Sprint(r.Out.RuntimeCyc), f(r.Out.StaticPJ), f(r.Out.TotalPJ),
			}
		} else {
			cells = []string{
				"synthetic", j.Pattern.String(), "", f(j.Rate), f(j.Frac), j.Mechanism.String(), fmt.Sprint(j.Config.Seed),
				f(r.Res.AvgLatency), f(r.Res.StaticPowerW), f(r.Res.DynamicPowerW), f(r.Res.TotalPowerW),
				fmt.Sprint(r.Res.GatedRouters), fmt.Sprint(r.Res.Packets), fmt.Sprint(r.Res.Undelivered),
				"", "", "",
			}
		}
		cells = append(cells,
			fmt.Sprint(r.CacheHit),
			strconv.FormatFloat(r.Wall.Seconds(), 'f', 3, 64),
			csvQuote(firstLine(r.Err)))
		b.WriteString(strings.Join(cells, ","))
		b.WriteByte('\n')
	}
	_, err := w.WriteString(b.String())
	return err
}

// csvQuote guards the free-text error column.
func csvQuote(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flovsweep:", err)
	os.Exit(1)
}
