package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"flov/internal/sweep"
)

// rowLine renders one rows.ndjson record as the recorder writes it.
func rowLine(t *testing.T, r sweep.Result) string {
	t.Helper()
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(data) + "\n"
}

func testRows(t *testing.T) []sweep.Result {
	t.Helper()
	spec := sweep.Spec{
		Patterns:   []string{"uniform"},
		Rates:      []float64{0.1, 0.2},
		GatedFracs: []float64{0.5},
		Mechanisms: []string{"baseline"},
		Width:      4, Height: 4,
		Cycles: 100, Warmup: 10,
		Seed: 7,
	}
	points, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]sweep.Result, len(points))
	for i, p := range points {
		rows[i] = sweep.Result{Job: p}
	}
	return rows
}

// TestLoadRowsTornTail pins the resume reader's crash tolerance: a
// partial final record (crash mid-append) is skipped and every complete
// row before it still loads.
func TestLoadRowsTornTail(t *testing.T) {
	rows := testRows(t)
	path := filepath.Join(t.TempDir(), "rows.ndjson")
	content := rowLine(t, rows[0]) + rowLine(t, rows[1])
	content += `{"job":{"pattern":"uniform","ra` // torn tail, no newline
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	got := loadRows(path)
	if len(got) != 2 {
		t.Fatalf("loaded %d rows, want 2 (torn tail skipped)", len(got))
	}
	for _, r := range rows {
		if _, ok := got[r.Job.Hash()]; !ok {
			t.Errorf("row for %s lost", r.Job.Desc())
		}
	}
}

// TestLoadRowsZeroByteAndMissing: both degenerate files mean "no durable
// rows", never an error.
func TestLoadRowsZeroByteAndMissing(t *testing.T) {
	dir := t.TempDir()
	if got := loadRows(filepath.Join(dir, "absent.ndjson")); len(got) != 0 {
		t.Fatalf("missing file loaded %d rows", len(got))
	}
	path := filepath.Join(dir, "empty.ndjson")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if got := loadRows(path); len(got) != 0 {
		t.Fatalf("zero-byte file loaded %d rows", len(got))
	}
}

// TestLoadRowsDuplicateLastWriteWins: re-appended rows for the same
// point (an interrupted run resumed twice) resolve to the last record.
func TestLoadRowsDuplicateLastWriteWins(t *testing.T) {
	rows := testRows(t)
	first := rows[0]
	second := rows[0]
	second.Res.AvgLatency = first.Res.AvgLatency + 1 // distinguishable duplicate

	path := filepath.Join(t.TempDir(), "rows.ndjson")
	content := rowLine(t, first) + rowLine(t, second)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	got := loadRows(path)
	if len(got) != 1 {
		t.Fatalf("loaded %d rows, want 1", len(got))
	}
	if r := got[first.Job.Hash()]; r.Res.AvgLatency != second.Res.AvgLatency {
		t.Fatalf("AvgLatency = %v, want last write %v", r.Res.AvgLatency, second.Res.AvgLatency)
	}
}

// TestLoadRowsSkipsErrorAndBlankLines: error-carrying rows re-simulate
// (they are never adopted), and blank lines are tolerated.
func TestLoadRowsSkipsErrorAndBlankLines(t *testing.T) {
	rows := testRows(t)
	bad := rows[1]
	bad.Err = "transient simulator failure"

	path := filepath.Join(t.TempDir(), "rows.ndjson")
	content := rowLine(t, rows[0]) + "\n\n" + rowLine(t, bad) + "not json at all\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	got := loadRows(path)
	if len(got) != 1 {
		t.Fatalf("loaded %d rows, want 1", len(got))
	}
	if _, ok := got[bad.Job.Hash()]; ok {
		t.Fatal("error row adopted")
	}
}
