// Benchmarks regenerating every table and figure of the paper's
// evaluation, one testing.B benchmark per experiment. Each benchmark
// reports the figure's headline metrics via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// prints the whole evaluation. Benchmarks run the reduced (quick) scale
// by default so the full suite stays minutes, not hours; cmd/figures
// runs full scale.
package flov_test

import (
	"context"
	"fmt"
	"testing"

	"flov"
	"flov/internal/config"
	"flov/internal/core"
	"flov/internal/experiments"
	"flov/internal/gating"
	"flov/internal/network"
	"flov/internal/sim"
	"flov/internal/topology"
	"flov/internal/traffic"
)

// quickOpts is the reduced-scale option set shared by all benches.
var quickOpts = experiments.Options{Quick: true, Seed: 42}

// BenchmarkTable1Config exercises the Table I configuration: build and
// validate the default and full-system configs.
func BenchmarkTable1Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := flov.Default()
		if err := cfg.Validate(); err != nil {
			b.Fatal(err)
		}
		fs := flov.FullSystem()
		if err := fs.Validate(); err != nil {
			b.Fatal(err)
		}
		_ = cfg.TableI()
	}
}

// reportSweep reports one figure panel: per-mechanism latency and power
// at a representative gated fraction.
func reportSweep(b *testing.B, rows []experiments.SweepRow, rate, frac float64) {
	b.Helper()
	for _, r := range rows {
		if r.Rate == rate && r.Frac == frac {
			b.ReportMetric(r.AvgLatency, "lat_"+r.Mechanism)
			b.ReportMetric(r.TotalPowerW*1e3, "mWtot_"+r.Mechanism)
		}
		if r.Undelivered != 0 {
			b.Fatalf("%s/%s rate=%.2f frac=%.1f: %d undelivered flits",
				r.Mechanism, r.Pattern, r.Rate, r.Frac, r.Undelivered)
		}
	}
}

// BenchmarkFig6UniformLatencyPower regenerates Fig. 6: uniform random
// traffic, average latency + dynamic/total power across the gated sweep
// at 0.02 and 0.08 flits/cycle/node.
func BenchmarkFig6UniformLatencyPower(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.LatencyPowerSweep(traffic.Uniform, quickOpts)
		if err != nil {
			b.Fatal(err)
		}
		reportSweep(b, rows, 0.02, 0.5)
	}
}

// BenchmarkFig7TornadoLatencyPower regenerates Fig. 7 (tornado traffic).
func BenchmarkFig7TornadoLatencyPower(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.LatencyPowerSweep(traffic.Tornado, quickOpts)
		if err != nil {
			b.Fatal(err)
		}
		reportSweep(b, rows, 0.02, 0.5)
	}
}

// BenchmarkFig8BreakdownUniform regenerates Fig. 8 (a): the latency
// decomposition under uniform random traffic.
func BenchmarkFig8BreakdownUniform(b *testing.B) {
	benchBreakdown(b, traffic.Uniform)
}

// BenchmarkFig8BreakdownTornado regenerates Fig. 8 (b).
func BenchmarkFig8BreakdownTornado(b *testing.B) {
	benchBreakdown(b, traffic.Tornado)
}

func benchBreakdown(b *testing.B, p traffic.Pattern) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.BreakdownSweep(p, quickOpts)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Frac == 0.5 && r.Mechanism == "gFLOV" {
				b.ReportMetric(r.Breakdown.Router, "router_cyc")
				b.ReportMetric(r.Breakdown.FLOV, "flov_cyc")
				b.ReportMetric(r.Breakdown.Contention, "contention_cyc")
			}
		}
	}
}

// BenchmarkFig9StaticPower regenerates Fig. 9: static power vs the
// fraction of power-gated cores for all four mechanisms.
func BenchmarkFig9StaticPower(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.StaticPowerSweep(quickOpts)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Frac == 0.8 {
				b.ReportMetric(r.StaticPowerW*1e3, "mWstat80_"+r.Mechanism)
			}
		}
	}
}

// BenchmarkFig10Reconfig regenerates Fig. 10: the latency timeline around
// gating changes, RP (network-stall reconfiguration) vs gFLOV.
func BenchmarkFig10Reconfig(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ReconfigTimeline(
			[]config.Mechanism{config.RP, config.GFLOV}, quickOpts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(experiments.PeakTimelineLatency(rows, "RP", 0), "peak_RP")
		b.ReportMetric(experiments.PeakTimelineLatency(rows, "gFLOV", 0), "peak_gFLOV")
	}
}

// BenchmarkFig8ParsecEnergy regenerates Figs. 8 (c)/(d) and the headline
// claims: normalized static energy and runtime across the nine
// PARSEC-substitute benchmarks.
func BenchmarkFig8ParsecEnergy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ParsecSweep(quickOpts)
		if err != nil {
			b.Fatal(err)
		}
		h := experiments.Summarize(rows)
		b.ReportMetric(h.StaticVsBaselinePct, "%statvsBase")
		b.ReportMetric(h.RuntimeVsBasePct, "%runtimevsBase")
		b.ReportMetric(h.StaticVsRPPct, "%statvsRP")
		b.ReportMetric(h.TotalVsRPPct, "%totvsRP")
	}
}

// BenchmarkSingleGFLOVRun measures raw simulator throughput: cycles per
// second for one gFLOV configuration (useful when optimizing the kernel).
func BenchmarkSingleGFLOVRun(b *testing.B) {
	cfg := flov.Default()
	cfg.TotalCycles = 20_000
	cfg.WarmupCycles = 2_000
	for i := 0; i < b.N; i++ {
		res, err := flov.RunSynthetic(flov.SyntheticOptions{
			Config: cfg, Mechanism: flov.GFLOV, Pattern: flov.Uniform,
			InjRate: 0.02, GatedFraction: 0.5, GatedSeed: 42,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Undelivered != 0 {
			b.Fatal("undelivered flits")
		}
	}
	b.ReportMetric(float64(cfg.TotalCycles)*float64(b.N)/b.Elapsed().Seconds(), "cycles/s")
}

// Example of the per-mechanism ablation the DESIGN.md calls out: how the
// FLOV idle threshold changes sleep aggressiveness (and therefore power).
func BenchmarkAblationIdleThreshold(b *testing.B) {
	for _, thr := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("thr%d", thr), func(b *testing.B) {
			cfg := flov.Default()
			cfg.IdleThreshold = thr
			cfg.TotalCycles = 20_000
			cfg.WarmupCycles = 2_000
			for i := 0; i < b.N; i++ {
				res, err := flov.RunSynthetic(flov.SyntheticOptions{
					Config: cfg, Mechanism: flov.GFLOV, Pattern: flov.Uniform,
					InjRate: 0.02, GatedFraction: 0.5, GatedSeed: 42,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.StaticPowerW*1e3, "mWstat")
			}
		})
	}
}

// benchSweepJobs is the fixed grid shared by the sweep-engine
// benchmarks: all four mechanisms at two gated fractions.
func benchSweepJobs(b *testing.B) []flov.SweepJob {
	b.Helper()
	cfg := flov.Default()
	cfg.TotalCycles = 10_000
	cfg.WarmupCycles = 1_000
	var jobs []flov.SweepJob
	for _, m := range flov.AllMechanisms() {
		for _, frac := range []float64{0, 0.5} {
			j, err := flov.SyntheticJob(flov.SyntheticOptions{
				Config: cfg, Mechanism: m, Pattern: flov.Uniform,
				InjRate: 0.02, GatedFraction: frac, GatedSeed: 42,
			})
			if err != nil {
				b.Fatal(err)
			}
			jobs = append(jobs, j)
		}
	}
	return jobs
}

// BenchmarkStep measures the bare cycle kernel: one warmed-up gFLOV
// network, one Step call per iteration, nothing else. allocs/op here is
// the number the hotalloc analyzer polices statically and the committed
// BENCH_sweep.json baseline gates in CI.
func BenchmarkStep(b *testing.B) {
	cfg := flov.Default()
	mesh, err := topology.NewMesh(cfg.Width, cfg.Height)
	if err != nil {
		b.Fatal(err)
	}
	mask := gating.FractionGated(mesh, 0.5, nil, sim.NewRNG(42))
	gen := traffic.NewGenerator(traffic.Uniform, mesh, nil)
	n, err := network.New(cfg, core.NewGFLOV(), gating.Static(mask), gen, 0.02)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 2_000; i++ { // reach steady state: queues and scratch warm
		n.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Step()
	}
}

func benchSweep(b *testing.B, workers int) {
	jobs := benchSweepJobs(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		results, stats, err := flov.RunSweep(context.Background(), jobs,
			flov.SweepOptions{Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if r.Err != "" {
				b.Fatal(r.Err)
			}
		}
		b.ReportMetric(float64(stats.SimCycles)/1e6/stats.Wall.Seconds(), "Mcyc/s")
	}
}

// BenchmarkSweepSequential runs the grid on one worker: the pre-engine
// baseline the parallel speedup is measured against.
func BenchmarkSweepSequential(b *testing.B) { benchSweep(b, 1) }

// BenchmarkSweepParallel runs the same grid at GOMAXPROCS workers.
func BenchmarkSweepParallel(b *testing.B) { benchSweep(b, 0) }

// BenchmarkScalingSweep runs the supplementary mesh-size scaling study
// (4x4 through 16x16) and reports the RP and gFLOV latency penalties over
// Baseline at 16x16.
func BenchmarkScalingSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ScalingSweep(quickOpts)
		if err != nil {
			b.Fatal(err)
		}
		var base, rp, gf float64
		for _, r := range rows {
			if r.Width != 16 {
				continue
			}
			switch r.Mechanism {
			case "Baseline":
				base = r.AvgLatency
			case "RP":
				rp = r.AvgLatency
			case "gFLOV":
				gf = r.AvgLatency
			}
		}
		b.ReportMetric(rp/base, "xRP16")
		b.ReportMetric(gf/base, "xgFLOV16")
	}
}
