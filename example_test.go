package flov_test

import (
	"fmt"

	"flov"
)

// ExampleRunSynthetic runs the paper's basic experiment: gFLOV on an 8x8
// mesh with half the cores power-gated, under uniform random traffic.
func ExampleRunSynthetic() {
	cfg := flov.Default()
	cfg.TotalCycles = 20_000
	cfg.WarmupCycles = 2_000

	res, err := flov.RunSynthetic(flov.SyntheticOptions{
		Config:        cfg,
		Mechanism:     flov.GFLOV,
		Pattern:       flov.Uniform,
		InjRate:       0.02,
		GatedFraction: 0.5,
		GatedSeed:     1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("undelivered flits: %d\n", res.Undelivered)
	fmt.Printf("routers power-gated: %d of 64\n", res.GatedRouters)
	fmt.Printf("static power below always-on baseline: %v\n", res.StaticPowerW < 0.716)
	// Output:
	// undelivered flits: 0
	// routers power-gated: 29 of 64
	// static power below always-on baseline: true
}

// ExampleBuild shows cycle-level control: build a network, step it, and
// inspect router power states.
func ExampleBuild() {
	cfg := flov.Default()
	cfg.TotalCycles = 1 << 30
	n, err := flov.Build(flov.SyntheticOptions{
		Config:        cfg,
		Mechanism:     flov.GFLOV,
		Pattern:       flov.Uniform,
		InjRate:       0.01,
		GatedFraction: 0.25,
		GatedSeed:     7,
	})
	if err != nil {
		panic(err)
	}
	n.RunCycles(2_000) // gated-core routers drain and power down

	gated := 0
	for id := 0; id < cfg.N(); id++ {
		if flov.PowerStateGlyph(n, id) == '.' {
			gated++
		}
	}
	fmt.Printf("power-gated routers after 2000 cycles: %d\n", gated)
	// Output:
	// power-gated routers after 2000 cycles: 14
}

// ExampleParseMechanism converts CLI-style names.
func ExampleParseMechanism() {
	m, _ := flov.ParseMechanism("gflov")
	fmt.Println(m)
	// Output:
	// gFLOV
}
