package flov_test

import (
	"testing"

	"flov"
)

func mustMesh(t *testing.T, w, h int) flov.Mesh {
	t.Helper()
	m, err := flov.NewMesh(w, h)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func countGated(mask []bool) int {
	n := 0
	for _, g := range mask {
		if g {
			n++
		}
	}
	return n
}

// TestRandomGatedMaskDeterministic pins the draw to its seed: the same
// seed must reproduce the mask bit for bit (the property flov.Build and
// the sweep engine rely on for cache identity), and a different seed
// must be able to produce a different draw.
func TestRandomGatedMaskDeterministic(t *testing.T) {
	m := mustMesh(t, 4, 4)
	a := flov.RandomGatedMask(m, 6, nil, 42)
	b := flov.RandomGatedMask(m, 6, nil, 42)
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("mask lengths %d/%d, want 16", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at node %d", i)
		}
	}
	if countGated(a) != 6 {
		t.Fatalf("gated %d nodes, want 6", countGated(a))
	}
	// Some nearby seed must produce a different set (a constant mask
	// would also pass the determinism check above).
	for seed := uint64(43); ; seed++ {
		if seed > 60 {
			t.Fatal("20 different seeds all reproduced the same mask")
		}
		c := flov.RandomGatedMask(m, 6, nil, seed)
		for i := range a {
			if a[i] != c[i] {
				return
			}
		}
	}
}

// TestRandomGatedMaskProtect draws many masks and checks protected
// nodes are never gated, even when the count forces every eligible node
// into the set.
func TestRandomGatedMaskProtect(t *testing.T) {
	m := mustMesh(t, 4, 4)
	protect := []int{0, 5, 15}
	for seed := uint64(1); seed <= 50; seed++ {
		mask := flov.RandomGatedMask(m, 16, protect, seed)
		for _, p := range protect {
			if mask[p] {
				t.Fatalf("seed %d gated protected node %d", seed, p)
			}
		}
		// All 13 eligible nodes gated, none of the protected 3.
		if got := countGated(mask); got != 13 {
			t.Fatalf("seed %d gated %d nodes, want all 13 eligible", seed, got)
		}
	}
}

// TestRandomGatedMaskClamping asks for more gated nodes than the mesh
// holds: the draw must clamp to the eligible count, not panic or wrap.
func TestRandomGatedMaskClamping(t *testing.T) {
	m := mustMesh(t, 2, 2)
	mask := flov.RandomGatedMask(m, 100, nil, 7)
	if got := countGated(mask); got != 4 {
		t.Fatalf("gated %d of 4 nodes with an oversized count, want 4", got)
	}
	mask = flov.RandomGatedMask(m, 100, []int{1, 2}, 7)
	if got := countGated(mask); got != 2 {
		t.Fatalf("gated %d nodes with 2 protected, want 2", got)
	}
	if mask[1] || mask[2] {
		t.Fatal("protected node gated under clamping")
	}
	// Zero and negative counts gate nothing.
	if got := countGated(flov.RandomGatedMask(m, 0, nil, 7)); got != 0 {
		t.Fatalf("count 0 gated %d nodes", got)
	}
}
