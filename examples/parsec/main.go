// Parsec: run PARSEC-substitute full-system benchmarks under all four
// mechanisms and print normalized static/total energy and runtime — the
// experiment behind the paper's headline numbers (Figs. 8 (c)/(d)).
//
//	go run ./examples/parsec                 # three representative benchmarks
//	go run ./examples/parsec blackscholes    # a specific benchmark
package main

import (
	"fmt"
	"log"
	"os"

	"flov"
)

func main() {
	benchmarks := []string{"blackscholes", "canneal", "x264"}
	if len(os.Args) > 1 {
		benchmarks = os.Args[1:]
	}

	for _, bench := range benchmarks {
		prof, ok := flov.ProfileByName(bench)
		if !ok {
			log.Fatalf("unknown benchmark %q (have: %v)", bench, flov.Benchmarks())
		}
		// Trim the workload so the example finishes in seconds.
		prof.QuotaPerCore /= 2

		fmt.Printf("%s (%.0f%% cores gated by the OS):\n", bench, prof.GatedFraction*100)
		var base flov.Outcome
		for _, mech := range flov.AllMechanisms() {
			out, err := flov.RunProfile(prof, mech, 7, 0)
			if err != nil {
				log.Fatal(err)
			}
			if mech == flov.Baseline {
				base = out
			}
			fmt.Printf("  %-9s runtime %8d cycles (%.2fx)   Estatic %7.2f uJ (%.2fx)   Etotal %7.2f uJ (%.2fx)\n",
				mech, out.RuntimeCyc, float64(out.RuntimeCyc)/float64(base.RuntimeCyc),
				out.StaticPJ/1e6, out.StaticPJ/base.StaticPJ,
				out.TotalPJ/1e6, out.TotalPJ/base.TotalPJ)
		}
		fmt.Println()
	}
}
