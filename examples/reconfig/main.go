// Reconfig: reproduce the paper's Fig. 10 — the latency timeline around
// core power-state changes. Router Parking stalls the whole network for
// each fabric-manager reconfiguration (>700-cycle Phase I), producing
// queueing spikes; gFLOV power-gates routers one by one in a distributed
// handshake and the timeline stays flat.
//
// This example also shows lower-level use of the public API: building a
// custom gating schedule and reading the per-bin latency timeline.
//
//	go run ./examples/reconfig
package main

import (
	"fmt"
	"log"
	"strings"

	"flov"
)

func main() {
	cfg := flov.Default()
	cfg.TotalCycles = 60_000
	cfg.WarmupCycles = 0
	cfg.TimelineBinSz = 1_000

	// 10% of cores gated; the gated set changes at 30k and 40k cycles.
	mesh := mustMesh(cfg)
	sched := buildSchedule(cfg, mesh)

	for _, mech := range []flov.Mechanism{flov.RP, flov.GFLOV} {
		res, err := flov.RunSynthetic(flov.SyntheticOptions{
			Config:    cfg,
			Mechanism: mech,
			Pattern:   flov.Uniform,
			InjRate:   0.02,
			Schedule:  sched,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s latency timeline (one row per 1000 cycles; * = 4 cycles):\n", mech)
		for _, b := range res.Timeline {
			if b.Count == 0 {
				continue
			}
			bar := int(b.AvgLat / 4)
			if bar > 70 {
				bar = 70
			}
			marker := ""
			if b.Start == 30_000 || b.Start == 40_000 {
				marker = "  <- gating change"
			}
			fmt.Printf("%6dk %6.1f %s%s\n", b.Start/1000, b.AvgLat, strings.Repeat("*", bar), marker)
		}
	}
}

func mustMesh(cfg flov.Config) flov.Mesh {
	m, err := flov.NewMesh(cfg.Width, cfg.Height)
	if err != nil {
		log.Fatal(err)
	}
	return m
}

// buildSchedule draws three different 10%-gated masks and switches
// between them mid-run.
func buildSchedule(cfg flov.Config, mesh flov.Mesh) *flov.Schedule {
	masks := make([][]bool, 3)
	for i := range masks {
		masks[i] = flov.RandomGatedMask(mesh, 6, nil, uint64(i+1))
	}
	sched, err := flov.NewSchedule(cfg.N(), []flov.GatingEvent{
		{At: 0, Gated: masks[0]},
		{At: 30_000, Gated: masks[1]},
		{At: 40_000, Gated: masks[2]},
	})
	if err != nil {
		log.Fatal(err)
	}
	return sched
}
