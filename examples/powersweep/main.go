// Powersweep: reproduce the shape of the paper's Fig. 6/9 on a reduced
// scale — sweep the fraction of power-gated cores and print average
// latency, static and total power for all four mechanisms.
//
//	go run ./examples/powersweep
package main

import (
	"fmt"
	"log"

	"flov"
)

func main() {
	cfg := flov.Default()
	cfg.TotalCycles = 40_000
	cfg.WarmupCycles = 4_000

	mechs := flov.AllMechanisms()
	fmt.Printf("%-8s", "gated%")
	for _, m := range mechs {
		fmt.Printf(" | %-22s", m)
	}
	fmt.Printf("\n%-8s", "")
	for range mechs {
		fmt.Printf(" | %6s %7s %7s", "lat", "Pstat", "Ptot")
	}
	fmt.Println()

	for _, frac := range []float64{0, 0.2, 0.4, 0.6, 0.8} {
		fmt.Printf("%-8.0f", frac*100)
		for _, m := range mechs {
			res, err := flov.RunSynthetic(flov.SyntheticOptions{
				Config:        cfg,
				Mechanism:     m,
				Pattern:       flov.Uniform,
				InjRate:       0.02,
				GatedFraction: frac,
				GatedSeed:     42,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" | %6.1f %6.0fmW %6.0fmW", res.AvgLatency, res.StaticPowerW*1e3, res.TotalPowerW*1e3)
		}
		fmt.Println()
	}
	fmt.Println("\nExpected shape (paper Figs. 6 and 9): FLOV latency stays below RP;")
	fmt.Println("gFLOV has the lowest static power and the gap to RP widens with the")
	fmt.Println("gated fraction; rFLOV saturates (it can gate at most ~half the mesh).")
}
