// Saturation: sweep the offered load and print the latency-vs-load curve
// for each mechanism with 30% of cores power-gated — the standard NoC
// characterization behind the paper's choice of 0.02 ("low") and 0.08
// ("high") injection rates.
//
//	go run ./examples/saturation
package main

import (
	"fmt"
	"log"

	"flov"
)

func main() {
	cfg := flov.Default()
	cfg.TotalCycles = 30_000
	cfg.WarmupCycles = 3_000

	rates := []float64{0.02, 0.06, 0.10, 0.14, 0.18, 0.22}
	mechs := flov.AllMechanisms()

	fmt.Printf("avg latency (cycles) at 30%% gated cores:\n%-8s", "rate")
	for _, m := range mechs {
		fmt.Printf("%10s", m)
	}
	fmt.Println()
	for _, rate := range rates {
		fmt.Printf("%-8.2f", rate)
		for _, m := range mechs {
			res, err := flov.RunSynthetic(flov.SyntheticOptions{
				Config:        cfg,
				Mechanism:     m,
				Pattern:       flov.Uniform,
				InjRate:       rate,
				GatedFraction: 0.3,
				GatedSeed:     42,
			})
			if err != nil {
				log.Fatal(err)
			}
			mark := ""
			if res.Undelivered > 0 {
				mark = "*" // saturated: drain deadline hit
			}
			fmt.Printf("%9.1f%s", res.AvgLatency, mark)
			if mark == "" {
				fmt.Print(" ")
			}
		}
		fmt.Println()
	}
	fmt.Println("\n* = saturated (offered load exceeds sustainable throughput).")
	fmt.Println("RP saturates earliest: parked regions concentrate traffic on the")
	fmt.Println("few connector routers, exactly the hotspot effect the paper notes.")
}
