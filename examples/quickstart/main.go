// Quickstart: simulate an 8x8 mesh with half the cores power-gated and
// compare generalized FLOV against the no-power-gating baseline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"flov"
)

func main() {
	for _, mech := range []flov.Mechanism{flov.Baseline, flov.GFLOV} {
		res, err := flov.RunSynthetic(flov.SyntheticOptions{
			Mechanism:     mech,         // power-gating scheme
			Pattern:       flov.Uniform, // synthetic traffic
			InjRate:       0.02,         // flits/cycle/node
			GatedFraction: 0.5,          // half the cores asleep
			GatedSeed:     1,            // same gated set for both runs
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s  avg latency %6.1f cycles   static %6.1f mW   total %6.1f mW   (%d routers gated)\n",
			mech, res.AvgLatency, res.StaticPowerW*1e3, res.TotalPowerW*1e3, res.GatedRouters)
	}
	fmt.Println("\nFLOV power-gates the routers of sleeping cores and flies packets")
	fmt.Println("over them through 1-cycle latches, so static power drops sharply")
	fmt.Println("while latency stays close to the always-on baseline.")
}
