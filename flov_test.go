package flov_test

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"flov"
)

func TestPublicAPISyntheticRun(t *testing.T) {
	cfg := flov.Default()
	cfg.TotalCycles = 15_000
	cfg.WarmupCycles = 1_500
	res, err := flov.RunSynthetic(flov.SyntheticOptions{
		Config:        cfg,
		Mechanism:     flov.GFLOV,
		Pattern:       flov.Uniform,
		InjRate:       0.02,
		GatedFraction: 0.5,
		GatedSeed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Packets == 0 || res.Undelivered != 0 {
		t.Fatalf("bad run: %s", res)
	}
	if res.GatedRouters == 0 {
		t.Fatal("no routers gated at 50%")
	}
}

// TestRunSyntheticDeterministic is the contract the sweep cache depends
// on: the same seed and config must produce byte-identical results on
// every run.
func TestRunSyntheticDeterministic(t *testing.T) {
	cfg := flov.Default()
	cfg.TotalCycles = 10_000
	cfg.WarmupCycles = 1_000
	opts := flov.SyntheticOptions{
		Config:        cfg,
		Mechanism:     flov.GFLOV,
		Pattern:       flov.Uniform,
		InjRate:       0.02,
		GatedFraction: 0.5,
		GatedSeed:     7,
	}
	a, err := flov.RunSynthetic(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := flov.RunSynthetic(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("repeated runs differ:\n  first:  %+v\n  second: %+v", a, b)
	}
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Fatal("repeated runs serialize differently")
	}
}

func TestPublicAPIDefaultsConfigWhenZero(t *testing.T) {
	res, err := flov.RunSynthetic(flov.SyntheticOptions{
		Mechanism: flov.Baseline,
		Pattern:   flov.Uniform,
		InjRate:   0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Packets == 0 {
		t.Fatal("zero-config run produced nothing")
	}
}

func TestPublicAPIAllMechanisms(t *testing.T) {
	cfg := flov.Default()
	cfg.TotalCycles = 8_000
	cfg.WarmupCycles = 800
	for _, m := range flov.AllMechanisms() {
		res, err := flov.RunSynthetic(flov.SyntheticOptions{
			Config: cfg, Mechanism: m, Pattern: flov.Tornado,
			InjRate: 0.02, GatedFraction: 0.3, GatedSeed: 9,
		})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if res.Undelivered != 0 {
			t.Fatalf("%v: %d undelivered", m, res.Undelivered)
		}
	}
}

func TestPublicAPIBuildAndStep(t *testing.T) {
	n, err := flov.Build(flov.SyntheticOptions{
		Mechanism: flov.RFLOV, Pattern: flov.Uniform, InjRate: 0.02,
		GatedFraction: 0.2, GatedSeed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.RunCycles(500)
	if n.Now() != 500 {
		t.Fatalf("Now() = %d", n.Now())
	}
}

func TestPublicAPISchedule(t *testing.T) {
	mesh, err := flov.NewMesh(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	maskA := flov.RandomGatedMask(mesh, 6, []int{0}, 1)
	maskB := flov.RandomGatedMask(mesh, 6, []int{0}, 2)
	sched, err := flov.NewSchedule(64, []flov.GatingEvent{
		{At: 0, Gated: maskA},
		{At: 5_000, Gated: maskB},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := flov.Default()
	cfg.TotalCycles = 12_000
	cfg.WarmupCycles = 1_000
	res, err := flov.RunSynthetic(flov.SyntheticOptions{
		Config: cfg, Mechanism: flov.GFLOV, Pattern: flov.Uniform,
		InjRate: 0.02, Schedule: sched,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Undelivered != 0 {
		t.Fatalf("undelivered: %d", res.Undelivered)
	}
}

func TestPublicAPIBenchmarks(t *testing.T) {
	names := flov.Benchmarks()
	if len(names) != 9 {
		t.Fatalf("want 9 PARSEC benchmarks, got %d", len(names))
	}
	for _, n := range names {
		if _, ok := flov.ProfileByName(n); !ok {
			t.Errorf("ProfileByName(%q) failed", n)
		}
	}
	if _, ok := flov.ProfileByName("nope"); ok {
		t.Error("unknown profile resolved")
	}
}

func TestPublicAPIRunPARSEC(t *testing.T) {
	prof, _ := flov.ProfileByName("swaptions")
	prof.QuotaPerCore = 20
	prof.Phases = 1
	out, err := flov.RunProfile(prof, flov.GFLOV, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Completed || out.Transactions == 0 {
		t.Fatalf("bad outcome: %s", out)
	}
}

func TestPublicAPIRunPARSECUnknown(t *testing.T) {
	if _, err := flov.RunPARSEC("nope", flov.GFLOV, 1, 0); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

// TestPublicAPIRunSweep covers the exported sweep surface: job
// construction, the pool, caching and the stats summary.
func TestPublicAPIRunSweep(t *testing.T) {
	cfg := flov.Default()
	cfg.TotalCycles = 6_000
	cfg.WarmupCycles = 600
	var jobs []flov.SweepJob
	for _, m := range flov.AllMechanisms() {
		j, err := flov.SyntheticJob(flov.SyntheticOptions{
			Config: cfg, Mechanism: m, Pattern: flov.Uniform,
			InjRate: 0.02, GatedFraction: 0.5, GatedSeed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	o := flov.SweepOptions{Workers: 2, CacheDir: t.TempDir()}
	results, stats, err := flov.RunSweep(context.Background(), jobs, o)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Jobs != len(jobs) || stats.Errors != 0 {
		t.Fatalf("bad stats: %+v", stats)
	}
	for i, r := range results {
		if r.Err != "" {
			t.Fatalf("job %d failed: %s", i, r.Err)
		}
		if r.Res.Packets == 0 {
			t.Fatalf("job %d produced no packets", i)
		}
	}
	_, again, err := flov.RunSweep(context.Background(), jobs, o)
	if err != nil {
		t.Fatal(err)
	}
	if again.CacheHits != len(jobs) {
		t.Fatalf("second run hit cache %d/%d times", again.CacheHits, len(jobs))
	}
}

func TestPublicAPIParse(t *testing.T) {
	if m, err := flov.ParseMechanism("gflov"); err != nil || m != flov.GFLOV {
		t.Fatal("ParseMechanism broken")
	}
	if p, err := flov.ParsePattern("tornado"); err != nil || p != flov.Tornado {
		t.Fatal("ParsePattern broken")
	}
}
