// Package flov is a cycle-accurate 2D-mesh network-on-chip simulator with
// distributed router power-gating, reproducing "Fly-Over: A Light-Weight
// Distributed Power-Gating Mechanism for Energy-Efficient Networks-on-Chip"
// (Boyapati, Huang, Wang, Kim, Yum, Kim — IPDPS 2017).
//
// Four mechanisms are available:
//
//   - Baseline: no router power-gating, YX dimension-order routing;
//   - RP: Router Parking — centralized fabric manager, connectivity-
//     preserving parking, table routing, stall-the-network reconfiguration;
//   - RFLOV: restricted FLOV — distributed handshakes, no two adjacent
//     routers gated;
//   - GFLOV: generalized FLOV — arbitrary runs of gated routers with
//     handshake/credit relaying over FLOV links.
//
// The two entry points mirror the paper's evaluation: RunSynthetic drives
// the BookSim-style synthetic workloads (uniform random, tornado, ...)
// and RunPARSEC drives the gem5/PARSEC-substitute closed-loop workloads.
// Lower-level access (custom schedules, direct network stepping) is
// available through Build.
package flov

import (
	"fmt"

	"flov/internal/config"
	"flov/internal/core"
	"flov/internal/gating"
	"flov/internal/network"
	"flov/internal/nlog"
	"flov/internal/rp"
	"flov/internal/sim"
	"flov/internal/stats"
	"flov/internal/topology"
	"flov/internal/trace"
	"flov/internal/traffic"
)

// Re-exported configuration types. Config carries every Table I knob; see
// Default for the paper's values.
type (
	// Config is the full simulation configuration (Table I parameters).
	Config = config.Config
	// Mechanism selects the power-gating scheme.
	Mechanism = config.Mechanism
	// Pattern selects a synthetic traffic pattern.
	Pattern = traffic.Pattern
	// Results summarizes one synthetic run (latency, breakdown, power).
	Results = network.Results
	// Breakdown is the Fig. 8 latency decomposition.
	Breakdown = stats.Breakdown
	// TimeBin is one bin of the Fig. 10 latency timeline.
	TimeBin = stats.TimeBin
	// Network is a fully wired simulated NoC for custom experiments.
	Network = network.Network
	// Schedule is a time-ordered core power-gating schedule.
	Schedule = gating.Schedule
	// GatingEvent switches the gated-core set at a cycle.
	GatingEvent = gating.Event
	// Mesh describes the 2D mesh topology.
	Mesh = topology.Mesh
	// Profile characterizes one PARSEC-like benchmark.
	Profile = trace.Profile
	// Outcome is a full-system (PARSEC) run result.
	Outcome = trace.Outcome
	// TraceLog is a bounded event log attachable to a Network.
	TraceLog = nlog.Log
	// TraceEvent is one recorded simulator event.
	TraceEvent = nlog.Event
)

// Mechanisms.
const (
	Baseline = config.Baseline
	RP       = config.RP
	RFLOV    = config.RFLOV
	GFLOV    = config.GFLOV
)

// Traffic patterns.
const (
	Uniform       = traffic.Uniform
	Tornado       = traffic.Tornado
	Transpose     = traffic.Transpose
	BitComplement = traffic.BitComplement
	Neighbor      = traffic.Neighbor
	Hotspot       = traffic.Hotspot
)

// Default returns the paper's Table I configuration (8x8 mesh, 3-stage
// routers, 6-flit buffers, 3+1 VCs per vnet, 1 vnet, 2 GHz, 17.7 pJ
// gating overhead, 10-cycle wakeup).
func Default() Config { return config.Default() }

// FullSystem returns the Table I full-system variant (3 virtual networks
// for the MESI traffic classes).
func FullSystem() Config { return config.FullSystem() }

// NewTraceLog returns an event log retaining the most recent capacity
// events; attach it with Network.EnableTrace before running.
func NewTraceLog(capacity int) *TraceLog { return nlog.New(capacity) }

// NewMesh constructs a 2D mesh topology description.
func NewMesh(width, height int) (Mesh, error) { return topology.NewMesh(width, height) }

// NewSchedule builds a core power-gating schedule from events (the first
// event must be at cycle 0, masks must cover n nodes).
func NewSchedule(n int, events []GatingEvent) (*Schedule, error) { return gating.New(n, events) }

// StaticSchedule builds a schedule with one constant gated set.
func StaticSchedule(gated []bool) *Schedule { return gating.Static(gated) }

// RandomGatedMask draws a mask gating `count` cores uniformly at random,
// never gating nodes in protect. The seed makes the draw reproducible.
func RandomGatedMask(m Mesh, count int, protect []int, seed uint64) []bool {
	return gating.RandomGated(m, count, protect, sim.NewRNG(seed))
}

// ParseMechanism converts a name ("baseline", "rp", "rflov", "gflov").
func ParseMechanism(s string) (Mechanism, error) { return config.ParseMechanism(s) }

// ParsePattern converts a name ("uniform", "tornado", ...).
func ParsePattern(s string) (Pattern, error) { return traffic.ParsePattern(s) }

// AllMechanisms lists the four mechanisms in canonical figure order.
func AllMechanisms() []Mechanism { return config.Mechanisms() }

// NewMechanism instantiates the controller for a mechanism.
func NewMechanism(m Mechanism) (network.Mechanism, error) {
	switch m {
	case Baseline:
		return network.NewBaseline(), nil
	case RP:
		return rp.New(), nil
	case RFLOV:
		return core.NewRFLOV(), nil
	case GFLOV:
		return core.NewGFLOV(), nil
	}
	return nil, fmt.Errorf("flov: unknown mechanism %v", m)
}

// SyntheticOptions parameterizes a synthetic-workload run.
type SyntheticOptions struct {
	// Config defaults to Default() when zero-valued (detected via Width).
	Config Config
	// Mechanism under test.
	Mechanism Mechanism
	// Pattern of synthetic traffic.
	Pattern Pattern
	// InjRate is the offered load in flits/cycle/node.
	InjRate float64
	// GatedFraction of cores power-gated for the whole run (ignored when
	// Schedule is set).
	GatedFraction float64
	// GatedSeed selects the random gated set (same seed + fraction =>
	// same set across mechanisms, for apples-to-apples comparison).
	GatedSeed uint64
	// Protect lists node ids whose cores are never gated.
	Protect []int
	// Schedule overrides GatedFraction with a full gating timeline
	// (used by the Fig. 10 reconfiguration experiment).
	Schedule *Schedule
	// Hotspots are the destinations of the Hotspot pattern.
	Hotspots []int
}

// normalizedConfig fills in Default() when the caller left Config zero.
func (o SyntheticOptions) normalizedConfig() Config {
	if o.Config.Width == 0 {
		return Default()
	}
	return o.Config
}

// Build assembles (but does not run) a network for the given options,
// for callers that need cycle-level control. The returned network is
// ready to Step.
func Build(o SyntheticOptions) (*Network, error) {
	cfg := o.normalizedConfig()
	cfg.Mechanism = o.Mechanism
	mesh, err := topology.NewMesh(cfg.Width, cfg.Height)
	if err != nil {
		return nil, err
	}
	sched := o.Schedule
	if sched == nil {
		mask := gating.FractionGated(mesh, o.GatedFraction, o.Protect, sim.NewRNG(o.GatedSeed^0xabcd))
		sched = gating.Static(mask)
	}
	gen := traffic.NewGenerator(o.Pattern, mesh, o.Hotspots)
	mech, err := NewMechanism(o.Mechanism)
	if err != nil {
		return nil, err
	}
	return network.New(cfg, mech, sched, gen, o.InjRate)
}

// RunSynthetic executes the standard synthetic experiment (warmup,
// measurement window, bounded drain) and returns its results.
func RunSynthetic(o SyntheticOptions) (Results, error) {
	n, err := Build(o)
	if err != nil {
		return Results{}, err
	}
	return n.Run(), nil
}

// Benchmarks lists the nine PARSEC-substitute benchmark names.
func Benchmarks() []string {
	ps := trace.Profiles()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}

// ProfileByName returns the profile for a benchmark name.
func ProfileByName(name string) (Profile, bool) { return trace.ProfileByName(name) }

// RunPARSEC executes one PARSEC-substitute benchmark under a mechanism
// and returns the full-system outcome (runtime + energy). seed controls
// the workload's random draws; identical seeds give identical work across
// mechanisms. maxCycles bounds the run (0 means a generous default).
func RunPARSEC(benchmark string, m Mechanism, seed uint64, maxCycles int64) (Outcome, error) {
	prof, ok := trace.ProfileByName(benchmark)
	if !ok {
		return Outcome{}, fmt.Errorf("flov: unknown benchmark %q", benchmark)
	}
	return RunProfile(prof, m, seed, maxCycles)
}

// RunProfile executes an arbitrary (possibly customized) profile.
func RunProfile(prof Profile, m Mechanism, seed uint64, maxCycles int64) (Outcome, error) {
	if maxCycles <= 0 {
		maxCycles = 20_000_000
	}
	cfg := FullSystem()
	cfg.WarmupCycles = 0
	cfg.TotalCycles = 1 << 40
	mech, err := NewMechanism(m)
	if err != nil {
		return Outcome{}, err
	}
	n, err := network.New(cfg, mech, nil, nil, 0)
	if err != nil {
		return Outcome{}, err
	}
	d := trace.NewDriver(n, prof, seed)
	out := d.Run(maxCycles)
	if !out.Completed {
		return out, fmt.Errorf("flov: benchmark %s/%v did not complete within %d cycles", prof.Name, m, maxCycles)
	}
	return out, nil
}
