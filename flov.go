// Package flov is a cycle-accurate 2D-mesh network-on-chip simulator with
// distributed router power-gating, reproducing "Fly-Over: A Light-Weight
// Distributed Power-Gating Mechanism for Energy-Efficient Networks-on-Chip"
// (Boyapati, Huang, Wang, Kim, Yum, Kim — IPDPS 2017).
//
// Four mechanisms are available:
//
//   - Baseline: no router power-gating, YX dimension-order routing;
//   - RP: Router Parking — centralized fabric manager, connectivity-
//     preserving parking, table routing, stall-the-network reconfiguration;
//   - RFLOV: restricted FLOV — distributed handshakes, no two adjacent
//     routers gated;
//   - GFLOV: generalized FLOV — arbitrary runs of gated routers with
//     handshake/credit relaying over FLOV links.
//
// The two entry points mirror the paper's evaluation: RunSynthetic drives
// the BookSim-style synthetic workloads (uniform random, tornado, ...)
// and RunPARSEC drives the gem5/PARSEC-substitute closed-loop workloads.
// Lower-level access (custom schedules, direct network stepping) is
// available through Build.
package flov

import (
	"context"
	"fmt"
	"io"
	"time"

	"flov/internal/config"
	"flov/internal/fault"
	"flov/internal/gating"
	"flov/internal/network"
	"flov/internal/nlog"
	"flov/internal/sim"
	"flov/internal/stats"
	"flov/internal/sweep"
	"flov/internal/topology"
	"flov/internal/trace"
	"flov/internal/traffic"
)

// Re-exported configuration types. Config carries every Table I knob; see
// Default for the paper's values.
type (
	// Config is the full simulation configuration (Table I parameters).
	Config = config.Config
	// Mechanism selects the power-gating scheme.
	Mechanism = config.Mechanism
	// Pattern selects a synthetic traffic pattern.
	Pattern = traffic.Pattern
	// Results summarizes one synthetic run (latency, breakdown, power).
	Results = network.Results
	// Breakdown is the Fig. 8 latency decomposition.
	Breakdown = stats.Breakdown
	// TimeBin is one bin of the Fig. 10 latency timeline.
	TimeBin = stats.TimeBin
	// Network is a fully wired simulated NoC for custom experiments.
	Network = network.Network
	// Schedule is a time-ordered core power-gating schedule.
	Schedule = gating.Schedule
	// GatingEvent switches the gated-core set at a cycle.
	GatingEvent = gating.Event
	// Mesh describes the 2D mesh topology.
	Mesh = topology.Mesh
	// Profile characterizes one PARSEC-like benchmark.
	Profile = trace.Profile
	// Outcome is a full-system (PARSEC) run result.
	Outcome = trace.Outcome
	// TraceLog is a bounded event log attachable to a Network.
	TraceLog = nlog.Log
	// TraceEvent is one recorded simulator event.
	TraceEvent = nlog.Event
	// FaultSpec configures the deterministic fault-injection subsystem.
	FaultSpec = fault.Spec
	// FaultEvent is one scheduled fault in a FaultSpec.
	FaultEvent = fault.Event
)

// Mechanisms.
const (
	Baseline = config.Baseline
	RP       = config.RP
	RFLOV    = config.RFLOV
	GFLOV    = config.GFLOV
)

// Traffic patterns.
const (
	Uniform       = traffic.Uniform
	Tornado       = traffic.Tornado
	Transpose     = traffic.Transpose
	BitComplement = traffic.BitComplement
	Neighbor      = traffic.Neighbor
	Hotspot       = traffic.Hotspot
)

// Default returns the paper's Table I configuration (8x8 mesh, 3-stage
// routers, 6-flit buffers, 3+1 VCs per vnet, 1 vnet, 2 GHz, 17.7 pJ
// gating overhead, 10-cycle wakeup).
func Default() Config { return config.Default() }

// FullSystem returns the Table I full-system variant (3 virtual networks
// for the MESI traffic classes).
func FullSystem() Config { return config.FullSystem() }

// NewTraceLog returns an event log retaining the most recent capacity
// events; attach it with Network.EnableTrace before running.
func NewTraceLog(capacity int) *TraceLog { return nlog.New(capacity) }

// NewMesh constructs a 2D mesh topology description.
func NewMesh(width, height int) (Mesh, error) { return topology.NewMesh(width, height) }

// NewSchedule builds a core power-gating schedule from events (the first
// event must be at cycle 0, masks must cover n nodes).
func NewSchedule(n int, events []GatingEvent) (*Schedule, error) { return gating.New(n, events) }

// StaticSchedule builds a schedule with one constant gated set.
func StaticSchedule(gated []bool) *Schedule { return gating.Static(gated) }

// RandomGatedMask draws a mask gating `count` cores uniformly at random,
// never gating nodes in protect. The seed makes the draw reproducible.
func RandomGatedMask(m Mesh, count int, protect []int, seed uint64) []bool {
	return gating.RandomGated(m, count, protect, sim.NewRNG(seed))
}

// ParseFaultSpec decodes a fault-spec JSON document (the flovsim -faults
// and flovrel file format), rejecting unknown fields.
func ParseFaultSpec(data []byte) (FaultSpec, error) { return fault.ParseSpec(data) }

// ParseMechanism converts a name ("baseline", "rp", "rflov", "gflov").
func ParseMechanism(s string) (Mechanism, error) { return config.ParseMechanism(s) }

// ParsePattern converts a name ("uniform", "tornado", ...).
func ParsePattern(s string) (Pattern, error) { return traffic.ParsePattern(s) }

// AllMechanisms lists the four mechanisms in canonical figure order.
func AllMechanisms() []Mechanism { return config.Mechanisms() }

// AllPatterns lists every synthetic traffic pattern in canonical order,
// mirroring AllMechanisms. CLIs use it for help text and the
// design-space explorer for its pattern axis.
func AllPatterns() []Pattern { return traffic.Patterns() }

// NewMechanism instantiates the controller for a mechanism.
func NewMechanism(m Mechanism) (network.Mechanism, error) { return sweep.NewMechanism(m) }

// SyntheticOptions parameterizes a synthetic-workload run.
type SyntheticOptions struct {
	// Config defaults to Default() when zero-valued (detected via Width).
	Config Config
	// Mechanism under test.
	Mechanism Mechanism
	// Pattern of synthetic traffic.
	Pattern Pattern
	// InjRate is the offered load in flits/cycle/node.
	InjRate float64
	// GatedFraction of cores power-gated for the whole run (ignored when
	// Schedule is set).
	GatedFraction float64
	// GatedSeed selects the random gated set (same seed + fraction =>
	// same set across mechanisms, for apples-to-apples comparison).
	GatedSeed uint64
	// Protect lists node ids whose cores are never gated.
	Protect []int
	// Schedule overrides GatedFraction with a full gating timeline
	// (used by the Fig. 10 reconfiguration experiment).
	Schedule *Schedule
	// Hotspots are the destinations of the Hotspot pattern.
	Hotspots []int
	// Faults, when non-nil, attaches the deterministic fault-injection
	// subsystem. A zero-rate, empty-schedule spec leaves the run
	// byte-identical to a fault-free one.
	Faults *FaultSpec
}

// normalizedConfig fills in Default() when the caller left Config zero.
func (o SyntheticOptions) normalizedConfig() Config {
	if o.Config.Width == 0 {
		return Default()
	}
	return o.Config
}

// Build assembles (but does not run) a network for the given options,
// for callers that need cycle-level control. The returned network is
// ready to Step.
func Build(o SyntheticOptions) (*Network, error) {
	cfg := o.normalizedConfig()
	cfg.Mechanism = o.Mechanism
	mesh, err := topology.NewMesh(cfg.Width, cfg.Height)
	if err != nil {
		return nil, err
	}
	sched := o.Schedule
	if sched == nil {
		mask := gating.FractionGated(mesh, o.GatedFraction, o.Protect, sim.NewRNG(sim.MaskSeed(o.GatedSeed)))
		sched = gating.Static(mask)
	}
	gen := traffic.NewGenerator(o.Pattern, mesh, o.Hotspots)
	mech, err := NewMechanism(o.Mechanism)
	if err != nil {
		return nil, err
	}
	n, err := network.New(cfg, mech, sched, gen, o.InjRate)
	if err != nil {
		return nil, err
	}
	if o.Faults != nil {
		if err := n.AttachFaults(*o.Faults); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// RunSynthetic executes the standard synthetic experiment (warmup,
// measurement window, bounded drain) and returns its results.
func RunSynthetic(o SyntheticOptions) (Results, error) {
	n, err := Build(o)
	if err != nil {
		return Results{}, err
	}
	return n.Run(), nil
}

// Benchmarks lists the nine PARSEC-substitute benchmark names.
func Benchmarks() []string {
	ps := trace.Profiles()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}

// ProfileByName returns the profile for a benchmark name.
func ProfileByName(name string) (Profile, bool) { return trace.ProfileByName(name) }

// RunPARSEC executes one PARSEC-substitute benchmark under a mechanism
// and returns the full-system outcome (runtime + energy). seed controls
// the workload's random draws; identical seeds give identical work across
// mechanisms. maxCycles bounds the run (0 means a generous default).
func RunPARSEC(benchmark string, m Mechanism, seed uint64, maxCycles int64) (Outcome, error) {
	prof, ok := trace.ProfileByName(benchmark)
	if !ok {
		return Outcome{}, fmt.Errorf("flov: unknown benchmark %q", benchmark)
	}
	return RunProfile(prof, m, seed, maxCycles)
}

// RunProfile executes an arbitrary (possibly customized) profile.
func RunProfile(prof Profile, m Mechanism, seed uint64, maxCycles int64) (Outcome, error) {
	if maxCycles <= 0 {
		maxCycles = 20_000_000
	}
	cfg := FullSystem()
	cfg.WarmupCycles = 0
	cfg.TotalCycles = 1 << 40
	mech, err := NewMechanism(m)
	if err != nil {
		return Outcome{}, err
	}
	n, err := network.New(cfg, mech, nil, nil, 0)
	if err != nil {
		return Outcome{}, err
	}
	d := trace.NewDriver(n, prof, seed)
	out := d.Run(maxCycles)
	if !out.Completed {
		return out, fmt.Errorf("flov: benchmark %s/%v did not complete within %d cycles", prof.Name, m, maxCycles)
	}
	return out, nil
}

// Sweep engine types, re-exported for design-space exploration at scale.
// A sweep fans independent simulation points across a worker pool with
// content-addressed result caching; see cmd/flovsweep for the CLI.
type (
	// SweepJob fully describes one simulation point and hashes canonically.
	SweepJob = sweep.Job
	// SweepResult is one finished point (result or error, never both).
	SweepResult = sweep.Result
	// SweepSpec is the declarative grid description cmd/flovsweep accepts.
	SweepSpec = sweep.Spec
	// SweepStats aggregates a finished sweep (cache hits, throughput).
	SweepStats = sweep.Stats
	// SweepEvent is one job-lifecycle progress notification.
	SweepEvent = sweep.Event
	// SweepProgress observes sweep execution from worker goroutines.
	SweepProgress = sweep.Progress
)

// Sweep job kinds.
const (
	SweepSynthetic = sweep.Synthetic
	SweepPARSEC    = sweep.PARSEC
)

// SweepOptions configures RunSweep.
type SweepOptions struct {
	// Workers caps the pool; <= 0 means GOMAXPROCS.
	Workers int
	// CacheDir enables the on-disk result cache rooted there; "" runs
	// uncached. DefaultSweepCacheDir returns the conventional location.
	CacheDir string
	// Progress, when non-nil, receives per-job events (NewSweepReporter
	// for a terminal ticker). Must be safe for concurrent use.
	Progress SweepProgress
}

// DefaultSweepCacheDir returns the shared sweep cache location:
// $FLOV_SWEEP_CACHE if set, else <user-cache-dir>/flov-sweep.
func DefaultSweepCacheDir() (string, error) { return sweep.DefaultDir() }

// NewSweepReporter returns a terminal progress observer writing one line
// per finished job to w.
func NewSweepReporter(w io.Writer) SweepProgress { return sweep.NewReporter(w) }

// RunSweep executes the jobs across a worker pool and returns one result
// per job in job order, plus aggregate stats. Individual point failures
// (including panics inside the simulator) become error-carrying results;
// the error return covers setup problems only (an unusable cache dir).
// Cancelling ctx stops scheduling new points; points already running
// finish.
func RunSweep(ctx context.Context, jobs []SweepJob, o SweepOptions) ([]SweepResult, SweepStats, error) {
	e := &sweep.Engine{Workers: o.Workers, Progress: o.Progress}
	if o.CacheDir != "" {
		c, err := sweep.NewCache(o.CacheDir)
		if err != nil {
			return nil, SweepStats{}, err
		}
		e.Cache = c
	}
	start := time.Now()
	results := e.Run(ctx, jobs)
	return results, sweep.Summarize(results, time.Since(start)), nil
}

// SyntheticJob converts SyntheticOptions into a cacheable sweep job with
// the same semantics as RunSynthetic. Options carrying a Schedule are
// not representable as jobs (time-varying masks are not hashed); use
// Build for those.
func SyntheticJob(o SyntheticOptions) (SweepJob, error) {
	if o.Schedule != nil {
		return SweepJob{}, fmt.Errorf("flov: schedules are not supported in sweep jobs; use Build")
	}
	cfg := o.normalizedConfig()
	cfg.Mechanism = o.Mechanism
	return SweepJob{
		Kind:      SweepSynthetic,
		Config:    cfg,
		Pattern:   o.Pattern,
		Rate:      o.InjRate,
		Frac:      o.GatedFraction,
		Mechanism: o.Mechanism,
		MaskSeed:  sim.MaskSeed(o.GatedSeed), // Build's derivation: same point, same hash
		Protect:   o.Protect,
		Hotspots:  o.Hotspots,
		Faults:    o.Faults,
	}, nil
}

// PARSECJob converts a RunPARSEC invocation into a cacheable sweep job
// with identical semantics.
func PARSECJob(benchmark string, m Mechanism, seed uint64, maxCycles int64) (SweepJob, error) {
	prof, ok := trace.ProfileByName(benchmark)
	if !ok {
		return SweepJob{}, fmt.Errorf("flov: unknown benchmark %q", benchmark)
	}
	cfg := FullSystem()
	cfg.WarmupCycles = 0
	cfg.TotalCycles = 1 << 40
	cfg.Mechanism = m
	return SweepJob{
		Kind:      SweepPARSEC,
		Config:    cfg,
		Mechanism: m,
		Profile:   prof,
		Seed:      seed,
		MaxCycles: maxCycles,
	}, nil
}
